//! Bit-level determinism guarantees, enforced end to end:
//!
//! 1. **Byte-identical outcomes** — two runs of the same QPU-contended
//!    scenario from the same seed serialize to the same bytes, whether
//!    the workload is materialized up front or streamed lazily. Not
//!    "statistically equivalent": the serialized [`Outcome`] JSON must
//!    match byte for byte, floats included.
//! 2. **Pinned event emission order** — the observer event stream is part
//!    of the deterministic contract. A hash-order iteration anywhere in
//!    the hot path shows up here first, as a reordered stream.
//!
//! These tests are the runtime complement to the `hpcqc-lint` static
//! pass (D001/D002/D003): the lint forbids the constructs that break
//! determinism, this file proves the property they protect.

use hpcqc_core::observer::{SimEvent, SimObserver};
use hpcqc_core::outcome::Outcome;
use hpcqc_core::scenario::Scenario;
use hpcqc_core::sim::FacilitySim;
use hpcqc_core::source::SliceSource;
use hpcqc_core::strategy::Strategy;
use hpcqc_qpu::technology::Technology;
use hpcqc_qpu::Kernel;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::campaign::Workload;
use hpcqc_workload::job::{JobSpec, Phase};

/// A deliberately QPU-contended workload: 24 hybrid VQE-style loops and a
/// classical background, all racing for a single physical device. Queue
/// order, kernel interleaving and backfill decisions all matter here —
/// any nondeterminism in the scheduler or device queue changes the bytes.
fn contended_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for i in 0..24u64 {
        // Staggered submissions with varied shapes so ties and near-ties
        // exercise the comparator paths, not just distinct keys.
        let shots = 500 + (i % 5) * 200;
        let step = 20 + (i % 3) * 15;
        jobs.push(
            JobSpec::builder(format!("vqe-{i:02}"))
                .user(["alice", "bob", "carol"][(i % 3) as usize])
                .nodes(2 + (i % 4) as u32)
                .submit(SimTime::from_secs(i * 90))
                .walltime(SimDuration::from_hours(4))
                .phases(vec![
                    Phase::Classical(SimDuration::from_secs(step)),
                    Phase::Quantum(Kernel::sampling(shots as u32)),
                    Phase::Classical(SimDuration::from_secs(step)),
                    Phase::Quantum(Kernel::sampling(shots as u32)),
                    Phase::Classical(SimDuration::from_secs(step / 2)),
                ])
                .build(),
        );
    }
    for i in 0..8u64 {
        jobs.push(
            JobSpec::builder(format!("mpi-{i}"))
                .user("dave")
                .nodes(8)
                .submit(SimTime::from_secs(i * 300))
                .walltime(SimDuration::from_hours(2))
                .phases(vec![Phase::Classical(SimDuration::from_secs(900))])
                .build(),
        );
    }
    // JobSource contracts require non-decreasing submit instants; sort
    // stably so same-instant submissions keep a deterministic order.
    jobs.sort_by_key(|j| j.submit());
    jobs
}

fn contended_scenario(strategy: Strategy) -> Scenario {
    Scenario::builder()
        .classical_nodes(24)
        .devices(vec![Technology::Superconducting])
        .strategy(strategy)
        .seed(1234)
        .build()
}

fn outcome_bytes(outcome: &Outcome) -> Vec<u8> {
    serde_json::to_string(outcome)
        .expect("Outcome serializes")
        .into_bytes()
}

#[test]
fn same_seed_runs_serialize_byte_identically() {
    for strategy in [
        Strategy::CoSchedule,
        Strategy::Workflow,
        Strategy::Vqpu { vqpus: 4 },
    ] {
        let jobs = contended_jobs();
        let workload = Workload::from_jobs(jobs.clone());
        let sc = contended_scenario(strategy);

        let first = FacilitySim::run(&sc, &workload).unwrap();
        let second = FacilitySim::run(&sc, &workload).unwrap();
        assert_eq!(
            outcome_bytes(&first),
            outcome_bytes(&second),
            "{strategy}: two materialized runs from seed {} must serialize \
             to identical bytes",
            sc.seed
        );

        let mut source = SliceSource::new(&jobs);
        let streamed = FacilitySim::run_streamed(&sc, &mut source).unwrap();
        assert_eq!(
            outcome_bytes(&first),
            outcome_bytes(&streamed),
            "{strategy}: streamed run must serialize to the same bytes as \
             the materialized run"
        );
    }
}

/// Records a compact, order-sensitive trace of every emitted event.
#[derive(Debug, Default)]
struct EventTrace {
    entries: Vec<String>,
}

impl SimObserver for EventTrace {
    fn on_event(&mut self, now: SimTime, event: &SimEvent<'_>) {
        let label = match event {
            SimEvent::JobSubmitted { job, name, step } => {
                format!("submit {job} {name} step={step}")
            }
            SimEvent::JobHeld { job, name, reason } => format!("held {job} {name} {reason}"),
            SimEvent::JobStarted { job, name, .. } => format!("start {job} {name}"),
            SimEvent::AllocationChanged {
                job,
                node_delta,
                qpu_delta,
            } => format!("alloc {job} nodes={node_delta} qpus={qpu_delta}"),
            SimEvent::PhaseStarted {
                job, kind, index, ..
            } => format!("phase+ {job} {kind:?}[{index}]"),
            SimEvent::PhaseEnded {
                job, kind, index, ..
            } => format!("phase- {job} {kind:?}[{index}]"),
            SimEvent::KernelEnqueued { job, .. } => format!("kq {job}"),
            SimEvent::KernelExecStarted { job, .. } => format!("kx+ {job}"),
            SimEvent::KernelExecEnded { job, .. } => format!("kx- {job}"),
            SimEvent::JobFinalized { record } => format!("final {}", record.name),
            SimEvent::NodeFailed { node } => format!("fail {node}"),
            SimEvent::NodeRepaired { node } => format!("repair {node}"),
            SimEvent::DeviceFailed {
                device,
                recalibration,
            } => format!("dev- {device} recal={recalibration}"),
            SimEvent::DeviceRepaired { device } => format!("dev+ {device}"),
            SimEvent::KernelFailed { job, device, .. } => format!("kfail {job} dev={device}"),
            SimEvent::KernelRetried { job, attempt } => format!("kretry {job} n={attempt}"),
            SimEvent::KernelRerouted { job, from, to } => {
                format!("kroute {job} {from}->{to}")
            }
            SimEvent::CheckpointTaken { job, progress } => {
                format!("ckpt {job} {progress:.3}")
            }
            SimEvent::JobRestarted {
                job,
                rewound_node_seconds,
                ..
            } => format!("restart {job} rewound={rewound_node_seconds:.1}"),
        };
        self.entries.push(format!("{now} {label}"));
    }
}

#[test]
fn event_emission_order_is_pinned() {
    let workload = Workload::from_jobs(contended_jobs());
    let sc = contended_scenario(Strategy::Vqpu { vqpus: 4 });

    let mut a = EventTrace::default();
    FacilitySim::run_observed(&sc, &workload, &mut [&mut a]).unwrap();
    let mut b = EventTrace::default();
    FacilitySim::run_observed(&sc, &workload, &mut [&mut b]).unwrap();

    assert!(!a.entries.is_empty(), "the trace must record events");
    assert_eq!(
        a.entries, b.entries,
        "the full event stream must replay in the same order"
    );
}
