//! Property tests of the facility simulator: for arbitrary small hybrid
//! workloads, every driver (including the adaptive fifth strategy)
//! completes every job with consistent records, and the cluster/accounting
//! invariants hold after **every** event — the event loop re-checks
//! [`Cluster::check_invariants`](hpcqc_cluster::cluster::Cluster::check_invariants)
//! per event in debug builds (which these tests are), and an attached
//! [`SimObserver`] reconstructs the waste accounting from the public
//! event stream and polices its bounds event by event.

use hpcqc_core::observer::{PhaseKind, SimEvent, SimObserver};
use hpcqc_core::scenario::Scenario;
use hpcqc_core::sim::FacilitySim;
use hpcqc_core::strategy::Strategy;
use hpcqc_qpu::kernel::Kernel;
use hpcqc_qpu::technology::Technology;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::campaign::Workload;
use hpcqc_workload::job::{JobSpec, Phase};
use proptest::prelude::*;
// The paper's `Strategy` enum shadows proptest's trait of the same name;
// re-import the trait under an alias so `prop_map` stays resolvable.
use proptest::strategy::Strategy as PropStrategy;

const NODES: u32 = 16;

fn job_strategy() -> impl proptest::strategy::Strategy<Value = JobSpec> {
    (
        0u64..600, // submit
        1u32..=8,  // nodes
        prop::collection::vec(
            prop_oneof![
                (5u64..600).prop_map(|s| Phase::Classical(SimDuration::from_secs(s))),
                (100u32..5_000).prop_map(|shots| Phase::Quantum(Kernel::sampling(shots))),
            ],
            1..6,
        ),
    )
        .prop_map(|(submit, nodes, phases)| {
            JobSpec::builder(format!("j{submit}-{nodes}"))
                .user(format!("u{}", nodes % 3))
                .submit(SimTime::from_secs(submit))
                .nodes(nodes)
                .walltime(SimDuration::from_hours(8))
                .phases(phases)
                .build()
        })
}

fn strategy_strategy() -> impl proptest::strategy::Strategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::CoSchedule),
        Just(Strategy::Workflow),
        (1u32..=4).prop_map(|v| Strategy::Vqpu { vqpus: v }),
        (1u32..=4).prop_map(|m| Strategy::Malleable { min_nodes: m }),
        (1u32..=4).prop_map(|v| Strategy::Adaptive { vqpus: v }),
    ]
}

/// Reconstructs the facility-wide allocation/usage accounting from the
/// public [`SimEvent`] stream and checks its bounds after every event:
///
/// * allocated and used counts never go negative or exceed capacity;
/// * used nodes never exceed allocated nodes (work happens inside holds);
/// * concurrent kernel executions never exceed the device count.
#[derive(Debug)]
struct AccountingInvariants {
    node_capacity: f64,
    qpu_capacity: f64,
    node_alloc: f64,
    node_used: f64,
    qpu_alloc: f64,
    qpu_used: f64,
    events: u64,
    violations: Vec<String>,
}

impl AccountingInvariants {
    fn new(node_capacity: f64, qpu_capacity: f64) -> Self {
        AccountingInvariants {
            node_capacity,
            qpu_capacity,
            node_alloc: 0.0,
            node_used: 0.0,
            qpu_alloc: 0.0,
            qpu_used: 0.0,
            events: 0,
            violations: Vec::new(),
        }
    }

    fn check(&mut self, when: SimTime) {
        const EPS: f64 = 1e-6;
        let checks = [
            (self.node_alloc, self.node_capacity, "allocated nodes"),
            (self.node_used, self.node_capacity, "used nodes"),
            (self.qpu_alloc, self.qpu_capacity, "allocated QPUs"),
            (self.qpu_used, self.qpu_capacity, "executing kernels"),
        ];
        for (value, capacity, what) in checks {
            if !(-EPS..=capacity + EPS).contains(&value) {
                self.violations.push(format!(
                    "{what} = {value} outside [0, {capacity}] at {when}"
                ));
            }
        }
        if self.node_used > self.node_alloc + EPS {
            self.violations.push(format!(
                "used nodes {} exceed allocated {} at {when}",
                self.node_used, self.node_alloc
            ));
        }
    }
}

impl SimObserver for AccountingInvariants {
    fn on_event(&mut self, now: SimTime, event: &SimEvent<'_>) {
        match event {
            SimEvent::AllocationChanged {
                node_delta,
                qpu_delta,
                ..
            } => {
                self.node_alloc += node_delta;
                self.qpu_alloc += qpu_delta;
            }
            SimEvent::PhaseStarted {
                kind: PhaseKind::Classical,
                busy_nodes,
                ..
            } => self.node_used += busy_nodes,
            SimEvent::PhaseEnded {
                kind: PhaseKind::Classical,
                busy_nodes,
                ..
            } => self.node_used -= busy_nodes,
            SimEvent::KernelExecStarted { .. } => self.qpu_used += 1.0,
            SimEvent::KernelExecEnded { .. } => self.qpu_used -= 1.0,
            _ => {}
        }
        self.events += 1;
        self.check(now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Liveness + record consistency under every strategy.
    #[test]
    fn all_jobs_complete_consistently(
        jobs in prop::collection::vec(job_strategy(), 1..8),
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::from_jobs(jobs);
        let scenario = Scenario::builder()
            .classical_nodes(NODES)
            .device(Technology::Superconducting)
            .strategy(strategy)
            .seed(seed)
            .build();
        let outcome = FacilitySim::run(&scenario, &workload).expect("valid scenario");
        prop_assert_eq!(outcome.stats.len(), workload.len(), "lost jobs under {}", strategy);
        for r in outcome.stats.records() {
            prop_assert!(r.start >= r.submit, "{}: started before submission", r.name);
            prop_assert!(r.end >= r.start, "{}: ended before start", r.name);
            prop_assert!(r.node_seconds_allocated >= 0.0);
            // A job can never use more node-time than it held (stretch keeps
            // used == alloc during classical phases).
            prop_assert!(
                r.node_seconds_used <= r.node_seconds_allocated + 1e-6,
                "{}: used {} > allocated {}",
                r.name, r.node_seconds_used, r.node_seconds_allocated
            );
            // Exclusive strategies: QPU usage happens inside the hold.
            if !strategy.shares_qpu() && r.hybrid {
                prop_assert!(
                    r.qpu_seconds_used <= r.qpu_seconds_allocated + 1e-6,
                    "{}: qpu used {} > allocated {}",
                    r.name, r.qpu_seconds_used, r.qpu_seconds_allocated
                );
            }
        }
        prop_assert!(outcome.makespan >= workload.last_submit());
        prop_assert!(outcome.node_waste.used_fraction <= outcome.node_waste.allocated_fraction + 1e-9);
    }

    /// Cluster invariants and the node/QPU accounting integrals hold
    /// after every event, for arbitrary workloads under every driver
    /// (including `Adaptive`). Cluster state is re-checked per event by
    /// the loop's debug assertions; the resource accounting is verified
    /// independently by the attached observer.
    #[test]
    fn accounting_invariants_hold_after_every_event(
        jobs in prop::collection::vec(job_strategy(), 1..8),
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::from_jobs(jobs);
        let scenario = Scenario::builder()
            .classical_nodes(NODES)
            .device(Technology::Superconducting)
            .strategy(strategy)
            .seed(seed)
            .build();
        let mut invariants = AccountingInvariants::new(f64::from(NODES), 1.0);
        let outcome = FacilitySim::run_observed(&scenario, &workload, &mut [&mut invariants])
            .expect("valid scenario");
        prop_assert!(
            invariants.violations.is_empty(),
            "{}: {:?}",
            strategy,
            invariants.violations
        );
        prop_assert!(invariants.events > 0);
        // Advisory walltimes + no failures ⇒ the machine drains clean.
        prop_assert!(invariants.node_alloc.abs() < 1e-6, "{} nodes left allocated", invariants.node_alloc);
        prop_assert!(invariants.node_used.abs() < 1e-6);
        prop_assert!(invariants.qpu_alloc.abs() < 1e-6);
        prop_assert!(invariants.qpu_used.abs() < 1e-6);
        prop_assert_eq!(outcome.stats.len(), workload.len());
    }

    /// Full-pipeline determinism: same inputs ⇒ identical outcome.
    #[test]
    fn pipeline_deterministic(
        jobs in prop::collection::vec(job_strategy(), 1..6),
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::from_jobs(jobs);
        let scenario = Scenario::builder()
            .classical_nodes(NODES)
            .device(Technology::Superconducting)
            .strategy(strategy)
            .seed(seed)
            .build();
        let a = FacilitySim::run(&scenario, &workload).expect("valid");
        let b = FacilitySim::run(&scenario, &workload).expect("valid");
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.stats.mean_turnaround_secs(), b.stats.mean_turnaround_secs());
        prop_assert_eq!(a.total_kernels(), b.total_kernels());
        prop_assert_eq!(a.node_waste.wasted_unit_seconds, b.node_waste.wasted_unit_seconds);
    }

    /// Workflows never waste held nodes: allocation ≈ productive use.
    #[test]
    fn workflow_efficiency_invariant(
        jobs in prop::collection::vec(job_strategy(), 1..6),
        seed in any::<u64>(),
    ) {
        let workload = Workload::from_jobs(jobs);
        let scenario = Scenario::builder()
            .classical_nodes(NODES)
            .device(Technology::Superconducting)
            .strategy(Strategy::Workflow)
            .seed(seed)
            .build();
        let outcome = FacilitySim::run(&scenario, &workload).expect("valid");
        for r in outcome.stats.records() {
            prop_assert!(
                (r.node_seconds_allocated - r.node_seconds_used).abs() < 1.0,
                "{}: workflow wasted {} node-seconds",
                r.name,
                r.node_seconds_allocated - r.node_seconds_used
            );
        }
    }

    /// The malleable floor: during quantum phases the job keeps at most
    /// min(min_nodes, spec.nodes) — total allocation is bounded by the
    /// co-schedule baseline.
    #[test]
    fn malleable_never_allocates_more_than_coschedule(
        jobs in prop::collection::vec(job_strategy(), 1..5),
        seed in any::<u64>(),
    ) {
        let workload = Workload::from_jobs(jobs);
        let run = |strategy| {
            let scenario = Scenario::builder()
                .classical_nodes(NODES)
                .device(Technology::Superconducting)
                .strategy(strategy)
                .seed(seed)
                .build();
            FacilitySim::run(&scenario, &workload).expect("valid")
        };
        let malleable = run(Strategy::Malleable { min_nodes: 1 });
        let cosched = run(Strategy::CoSchedule);
        // Identical workload, but completion order may differ between the
        // strategies — match records by job name, and compare per-job
        // alloc-per-runtime ratios instead of absolutes (timing shifts).
        for m in malleable.stats.records() {
            let c = cosched
                .stats
                .records()
                .iter()
                .find(|c| c.name == m.name)
                .expect("same workload, same job names");
            let m_rate = m.node_seconds_allocated / m.runtime().as_secs_f64().max(1e-9);
            let c_rate = c.node_seconds_allocated / c.runtime().as_secs_f64().max(1e-9);
            prop_assert!(
                m_rate <= c_rate + 1e-6,
                "{}: malleable holds {:.2} nodes/s vs co-schedule {:.2}",
                m.name, m_rate, c_rate
            );
        }
    }
}
