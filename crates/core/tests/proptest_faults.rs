//! Property tests of the dependability layer: for arbitrary small hybrid
//! workloads under *arbitrary* fault plans (outages, drift, transient
//! kernel errors, node failures — with arbitrary recovery knobs), the
//! simulator never loses a job (every job finalizes exactly once, as
//! completed or failed), never spends more retries or requeues than the
//! plan's caps allow, and stays byte-deterministic for a fixed seed.

use hpcqc_core::observer::{SimEvent, SimObserver};
use hpcqc_core::scenario::Scenario;
use hpcqc_core::sim::FacilitySim;
use hpcqc_core::strategy::Strategy;
use hpcqc_faults::{DeviceFaults, DriftModel, FaultPlan, NodeFaults, RecoverySpec};
use hpcqc_qpu::kernel::Kernel;
use hpcqc_qpu::technology::Technology;
use hpcqc_simcore::dist::Dist;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::campaign::Workload;
use hpcqc_workload::job::{JobSpec, Phase};
use proptest::prelude::*;
// The paper's `Strategy` enum shadows proptest's trait of the same name;
// re-import the trait under an alias so `prop_map` stays resolvable.
use proptest::strategy::Strategy as PropStrategy;

const NODES: u32 = 16;

/// Small hybrid jobs with *unique* names, so the ledger below can key
/// finalizations by name.
fn workload_strategy() -> impl PropStrategy<Value = Workload> {
    prop::collection::vec(
        (
            0u64..600, // submit
            1u32..=8,  // nodes
            prop::collection::vec(
                prop_oneof![
                    (5u64..600).prop_map(|s| Phase::Classical(SimDuration::from_secs(s))),
                    (100u32..5_000).prop_map(|shots| Phase::Quantum(Kernel::sampling(shots))),
                ],
                1..5,
            ),
        ),
        1..7,
    )
    .prop_map(|specs| {
        Workload::from_jobs(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (submit, nodes, phases))| {
                    JobSpec::builder(format!("j{i}"))
                        .user(format!("u{}", i % 3))
                        .submit(SimTime::from_secs(submit))
                        .nodes(nodes)
                        .walltime(SimDuration::from_hours(8))
                        .phases(phases)
                        .build()
                })
                .collect(),
        )
    })
}

/// `Option`-shaped strategy (the vendored proptest has no `prop::option`).
fn maybe<S>(inner: S) -> impl PropStrategy<Value = Option<S::Value>>
where
    S: PropStrategy + 'static,
    S::Value: Clone,
{
    prop_oneof![Just(None), inner.prop_map(Some)]
}

/// Arbitrary fault plans: each process is independently present or
/// absent, with rates aggressive enough to fire on short workloads but
/// bounded so runs terminate quickly.
fn plan_strategy() -> impl PropStrategy<Value = FaultPlan> {
    // Nested tuples: the vendored proptest implements `Strategy` for
    // tuples only up to arity six.
    (
        (
            maybe((1_800f64..28_800.0, 60f64..900.0)), // outage mtbf / repair
            maybe((1e-6f64..1e-4, 0.2f64..1.0)),       // drift per-shot / threshold
            0.0f64..0.3,                               // transient kernel error rate
        ),
        (
            0u32..5,                                    // kernel retry cap
            1.0f64..30.0,                               // retry backoff base
            any::<bool>(),                              // failover
            0u32..6,                                    // requeue budget
            maybe((7_200f64..28_800.0, 120f64..600.0)), // node mtbf / repair
        ),
    )
        .prop_map(
            |((outage, drift, error_rate), (retries, backoff, failover, requeues, node))| {
                let mut device = DeviceFaults::new().kernel_error_rate(error_rate);
                if let Some((mtbf, repair)) = outage {
                    device = device
                        .mtbf(Dist::exponential(mtbf))
                        .repair(Dist::constant(repair));
                }
                if let Some((per_shot, threshold)) = drift {
                    device = device.drift(
                        DriftModel::new(per_shot, threshold).recalibration(Dist::constant(120.0)),
                    );
                }
                let mut plan = FaultPlan::named("prop").device(device).recovery(
                    RecoverySpec::new()
                        .max_kernel_retries(retries)
                        .retry_backoff_secs(backoff)
                        .failover(failover)
                        .max_requeues(requeues),
                );
                if let Some((mtbf, repair)) = node {
                    plan = plan.node(NodeFaults::exponential(mtbf, repair));
                }
                plan
            },
        )
}

fn strategy_strategy() -> impl PropStrategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::CoSchedule),
        Just(Strategy::Workflow),
        (1u32..=4).prop_map(|v| Strategy::Vqpu { vqpus: v }),
    ]
}

fn scenario_of(strategy: Strategy, seed: u64, plan: &FaultPlan) -> Scenario {
    Scenario::builder()
        .classical_nodes(NODES)
        .device(Technology::Superconducting)
        .strategy(strategy)
        .seed(seed)
        .faults(plan.clone())
        .build()
}

/// Counts fault-recovery traffic from the public event stream: per-job
/// finalizations and restarts, and the highest retry attempt seen.
#[derive(Debug, Default)]
struct FaultLedger {
    finalized: std::collections::BTreeMap<String, u32>,
    restarts: std::collections::BTreeMap<u64, u32>,
    max_retry_attempt: u32,
}

impl SimObserver for FaultLedger {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent<'_>) {
        match event {
            SimEvent::JobFinalized { record } => {
                *self.finalized.entry(record.name.clone()).or_default() += 1;
            }
            SimEvent::JobRestarted { job, .. } => {
                *self.restarts.entry(job.raw()).or_default() += 1;
            }
            SimEvent::KernelRetried { attempt, .. } => {
                self.max_retry_attempt = self.max_retry_attempt.max(*attempt);
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No job is ever lost: under arbitrary fault schedules every job
    /// finalizes exactly once — completed, or failed after its budgets
    /// ran out — and the outcome records all of them.
    #[test]
    fn no_job_lost_under_arbitrary_faults(
        workload in workload_strategy(),
        plan in plan_strategy(),
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let scenario = scenario_of(strategy, seed, &plan);
        let mut ledger = FaultLedger::default();
        let outcome = FacilitySim::run_observed(&scenario, &workload, &mut [&mut ledger])
            .expect("valid scenario");
        prop_assert_eq!(
            outcome.stats.len(),
            workload.len(),
            "lost jobs under {} with {:?}",
            strategy,
            plan
        );
        prop_assert_eq!(ledger.finalized.len(), workload.len());
        for (name, count) in &ledger.finalized {
            prop_assert_eq!(*count, 1, "{} finalized {} times", name, count);
        }
    }

    /// Recovery budgets are hard caps: no retry attempt ever exceeds the
    /// plan's kernel-retry cap, and no job restarts more often than the
    /// applicable requeue budget.
    #[test]
    fn retries_and_requeues_never_exceed_caps(
        workload in workload_strategy(),
        plan in plan_strategy(),
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let scenario = scenario_of(strategy, seed, &plan);
        let mut ledger = FaultLedger::default();
        FacilitySim::run_observed(&scenario, &workload, &mut [&mut ledger])
            .expect("valid scenario");
        let recovery = plan.recovery_or_default();
        prop_assert!(
            ledger.max_retry_attempt <= recovery.kernel_retry_cap(),
            "retry attempt {} exceeds cap {}",
            ledger.max_retry_attempt,
            recovery.kernel_retry_cap()
        );
        // Kernel-exhaustion requeues and node-failure requeues share the
        // per-job counter; each path enforces its own budget, so the
        // total is bounded by the larger of the two.
        let budget = recovery
            .requeue_budget()
            .max(plan.node.as_ref().map_or(0, NodeFaults::requeue_budget));
        for (job, restarts) in &ledger.restarts {
            prop_assert!(
                *restarts <= budget,
                "job {} restarted {} times against budget {}",
                job,
                restarts,
                budget
            );
        }
    }

    /// Fault injection keeps full-pipeline determinism: the same seed
    /// replays the same faults and produces a byte-identical outcome.
    #[test]
    fn faulted_runs_are_byte_identical(
        workload in workload_strategy(),
        plan in plan_strategy(),
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let scenario = scenario_of(strategy, seed, &plan);
        let a = FacilitySim::run(&scenario, &workload).expect("valid");
        let b = FacilitySim::run(&scenario, &workload).expect("valid");
        prop_assert_eq!(
            serde_json::to_string(&a).expect("outcome serializes"),
            serde_json::to_string(&b).expect("outcome serializes")
        );
    }
}
