//! Streaming-core guarantees:
//!
//! 1. **Equivalence** — a streamed run produces the *identical* outcome a
//!    materialized run of the same job sequence does, under every
//!    strategy (the front-lane arrival scheduling makes lazy pulling
//!    order-exact, not just approximately right).
//! 2. **Constant memory** — the simulator's per-job state is bounded by
//!    jobs in flight: the high-water mark
//!    ([`Outcome::peak_in_flight_jobs`]) stays orders of magnitude below
//!    the total job count for facility-scale streams, including the
//!    million-job acceptance scenario (release-only, `--ignored`).

use hpcqc_core::outcome::Outcome;
use hpcqc_core::scenario::Scenario;
use hpcqc_core::sim::FacilitySim;
use hpcqc_core::source::{IterSource, SliceSource};
use hpcqc_core::strategy::Strategy;
use hpcqc_gen::{GeneratorSpec, Horizon};
use hpcqc_metrics::jobstats::JobStats;
use hpcqc_qpu::technology::Technology;
use hpcqc_workload::campaign::Workload;
use hpcqc_workload::job::JobSpec;

fn scenario(strategy: Strategy, nodes: u32) -> Scenario {
    Scenario::builder()
        .classical_nodes(nodes)
        .devices(vec![
            Technology::Superconducting,
            Technology::Superconducting,
        ])
        .strategy(strategy)
        .seed(7)
        .build()
}

/// Makespan and all headline aggregates agree exactly.
fn assert_outcomes_identical(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    let agg = |s: &JobStats| {
        (
            s.len(),
            s.failed_count(),
            s.mean_wait_secs(),
            s.mean_turnaround_secs(),
            s.mean_bounded_slowdown(),
            s.total_node_hours_wasted(),
        )
    };
    assert_eq!(agg(&a.stats), agg(&b.stats), "{what}: job aggregates");
    assert_eq!(
        a.node_waste.efficiency, b.node_waste.efficiency,
        "{what}: node efficiency"
    );
    assert_eq!(
        a.qpu_waste.allocated_fraction, b.qpu_waste.allocated_fraction,
        "{what}: qpu allocation"
    );
    for (da, db) in a.devices.iter().zip(&b.devices) {
        assert_eq!(da.tasks, db.tasks, "{what}: device tasks");
        assert_eq!(da.busy_seconds, db.busy_seconds, "{what}: device busy");
    }
    // Per-record equality over whatever both retained.
    assert_eq!(
        a.stats.records(),
        b.stats.records(),
        "{what}: per-job records"
    );
}

#[test]
fn streamed_equals_materialized_under_every_strategy() {
    let mut spec = GeneratorSpec::dev_facility();
    spec.horizon = Horizon::Jobs { count: 120 };
    let jobs: Vec<JobSpec> = spec.stream(42).collect();
    let workload = Workload::from_jobs(jobs.clone());
    for strategy in Strategy::extended_set() {
        let sc = scenario(strategy, 64);
        let materialized = FacilitySim::run(&sc, &workload).unwrap();
        let mut source = IterSource::new(jobs.clone().into_iter());
        let streamed = FacilitySim::run_streamed(&sc, &mut source).unwrap();
        assert_outcomes_identical(&materialized, &streamed, &strategy.to_string());
    }
}

#[test]
fn streamed_equals_materialized_with_walltime_kills_and_failures() {
    use hpcqc_core::scenario::{FailureModel, WalltimePolicy};
    let mut spec = GeneratorSpec::dev_facility();
    spec.horizon = Horizon::Jobs { count: 80 };
    // Tight margins so some jobs are killed and requeued.
    for class in &mut spec.classes {
        class.walltime_margin = 1.0;
    }
    let jobs: Vec<JobSpec> = spec.stream(5).collect();
    let workload = Workload::from_jobs(jobs.clone());
    let mut sc = scenario(Strategy::Workflow, 48);
    sc.walltime_policy = WalltimePolicy::Kill { max_requeues: 1 };
    sc.node_failures = Some(FailureModel::exponential(20_000.0));
    let materialized = FacilitySim::run(&sc, &workload).unwrap();
    let mut source = SliceSource::new(&jobs);
    let streamed = FacilitySim::run_streamed(&sc, &mut source).unwrap();
    assert_outcomes_identical(&materialized, &streamed, "kills+failures");
}

/// The streaming-memory contract at a size tier-1 can afford in debug:
/// tens of thousands of jobs, peak live state orders of magnitude lower.
#[test]
fn high_water_mark_is_bounded_by_in_flight_jobs() {
    let mut spec = GeneratorSpec::dev_facility();
    spec.horizon = Horizon::Jobs { count: 12_000 };
    // Size the machine so the queue drains (offered load below capacity).
    let jobs_per_hour = spec.expected_jobs_per_hour();
    assert!(jobs_per_hour > 0.0);
    let sc = scenario(Strategy::Vqpu { vqpus: 8 }, 512);
    let mut source = spec.stream(9);
    let outcome = FacilitySim::run_streamed(&sc, &mut source).unwrap();
    assert_eq!(outcome.stats.len(), 12_000, "every job must finalize");
    assert!(
        outcome.peak_in_flight_jobs < 2_000,
        "peak in-flight {} must stay far below the 12k total",
        outcome.peak_in_flight_jobs
    );
    // The generator's own buffer is bounded too.
    assert!(
        source.peak_pending() < 2_000,
        "generator heap high-water {}",
        source.peak_pending()
    );
}

/// The acceptance scenario: a month-long, million-job generated campaign
/// runs to completion through the streaming path without ever
/// materializing the job vector. Release-only (`cargo test --release --
/// --ignored million`), exercised by the CI `gen-smoke` step.
#[test]
#[ignore = "release-scale: ~1M jobs; run via CI gen-smoke or --ignored"]
fn million_job_stream_runs_in_constant_memory() {
    let mut spec = GeneratorSpec::dev_facility();
    spec.horizon = Horizon::Jobs { count: 1_000_000 };
    // A month-scale arrival schedule: ~1 400 jobs/hour against a machine
    // sized to drain them.
    spec.arrival.base_per_hour = 250.0;
    spec.tenants.campaign_max = 64;
    let sc = Scenario::builder()
        .classical_nodes(4_096)
        .devices(vec![
            Technology::Superconducting,
            Technology::Superconducting,
            Technology::Superconducting,
            Technology::Superconducting,
        ])
        .strategy(Strategy::Vqpu { vqpus: 16 })
        .seed(1)
        .build();
    let mut source = spec.stream(123);
    let outcome = FacilitySim::run_streamed(&sc, &mut source).unwrap();
    assert_eq!(outcome.stats.len(), 1_000_000);
    assert_eq!(
        outcome.stats.len(),
        outcome.stats.completed_count() + outcome.stats.failed_count()
    );
    // The whole point: a million jobs, peak live state in the thousands.
    assert!(
        outcome.peak_in_flight_jobs < 50_000,
        "peak in-flight {} is not constant-memory behaviour",
        outcome.peak_in_flight_jobs
    );
    assert!(source.peak_pending() < 50_000);
    // Month-long horizon actually simulated.
    assert!(
        outcome.makespan.as_secs_f64() > 20.0 * 86_400.0,
        "makespan {} s is shorter than ~3 weeks",
        outcome.makespan.as_secs_f64()
    );
    // Metrics stayed capped, yet aggregates cover the full population.
    assert!(outcome.stats.records().len() < outcome.stats.len());
    assert!(outcome.stats.wait_p95_secs().is_some());
}

/// Sources that misbehave (out-of-order submits) are clamped, not fatal.
#[test]
fn out_of_order_source_is_clamped_monotonic() {
    use hpcqc_simcore::time::SimTime;
    let jobs = vec![
        JobSpec::builder("late")
            .submit(SimTime::from_secs(100))
            .build(),
        JobSpec::builder("early")
            .submit(SimTime::from_secs(5))
            .build(),
    ];
    // Deliberately NOT sorted: feed the raw vec as a source.
    let mut source = IterSource::new(jobs.into_iter());
    let sc = scenario(Strategy::CoSchedule, 16);
    let outcome = FacilitySim::run_streamed(&sc, &mut source).unwrap();
    assert_eq!(outcome.stats.len(), 2);
    let early = outcome
        .stats
        .records()
        .iter()
        .find(|r| r.name == "early")
        .unwrap();
    // Clamped to the clock: treated as arriving at t=100, not t=5.
    assert_eq!(early.submit.as_secs_f64(), 5.0);
    assert!(early.start >= SimTime::from_secs(100));
}
