//! Property tests of the fleet routing layer threaded through the full
//! simulator: for arbitrary hybrid workloads over a heterogeneous fleet,
//!
//! 1. every enqueued kernel is routed exactly once (no kernel lost, none
//!    duplicated);
//! 2. no kernel lands on a device whose per-kernel shot capacity it
//!    exceeds, and none lands on a downed device;
//! 3. the same `(scenario, seed)` routes identically across runs, under
//!    every [`RoutePolicy`](hpcqc_fleet::RoutePolicy) implementation.

use hpcqc_core::observer::{SimEvent, SimObserver};
use hpcqc_core::scenario::Scenario;
use hpcqc_core::sim::FacilitySim;
use hpcqc_core::strategy::Strategy;
use hpcqc_fleet::{FleetDevice, FleetSpec, RouteSpec, ALL_ROUTES};
use hpcqc_qpu::kernel::Kernel;
use hpcqc_qpu::technology::Technology;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::campaign::Workload;
use hpcqc_workload::job::{JobSpec, Phase};
use proptest::prelude::*;
// The simulator's `Strategy` enum shadows proptest's trait of the same
// name; alias the trait so `prop_map` stays resolvable.
use proptest::strategy::Strategy as PropStrategy;
use std::collections::BTreeMap;

/// Shot cap on the first fleet device; generated kernels straddle it.
const SMALL_CAP: u32 = 1_500;

fn fleet(route: RouteSpec) -> FleetSpec {
    FleetSpec::new("prop")
        .route(route)
        .device(
            FleetDevice::new("sc-capped", Technology::Superconducting)
                .with_shot_capacity(SMALL_CAP),
        )
        .device(FleetDevice::new("sc-open", Technology::Superconducting))
        .device(FleetDevice::new("ion-down", Technology::TrappedIon).with_down(true))
        .device(FleetDevice::new("ion-open", Technology::TrappedIon))
}

fn job_strategy() -> impl proptest::strategy::Strategy<Value = JobSpec> {
    (
        0u64..400,    // submit
        1u32..=6,     // nodes
        1usize..=3,   // hybrid iterations
        100u32..4000, // shots (straddles SMALL_CAP)
    )
        .prop_map(|(submit, nodes, iters, shots)| {
            let mut phases = Vec::new();
            for _ in 0..iters {
                phases.push(Phase::Classical(SimDuration::from_secs(30)));
                phases.push(Phase::Quantum(Kernel::sampling(shots)));
            }
            JobSpec::builder(format!("j{submit}-{nodes}-{shots}"))
                .submit(SimTime::from_secs(submit))
                .nodes(nodes)
                .walltime(SimDuration::from_hours(8))
                .phases(phases)
                .build()
        })
}

fn route_strategy() -> impl proptest::strategy::Strategy<Value = RouteSpec> {
    prop_oneof![
        Just(RouteSpec::PinFirst),
        Just(RouteSpec::LeastLoaded),
        Just(RouteSpec::TechAffinity),
    ]
}

/// Collects every `KernelEnqueued` routing decision.
#[derive(Debug, Default)]
struct RouteLog {
    routes: Vec<(String, usize)>,
}

impl SimObserver for RouteLog {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent<'_>) {
        if let SimEvent::KernelEnqueued { name, device, .. } = event {
            self.routes.push((name.to_string(), *device));
        }
    }
}

fn scenario(route: RouteSpec, seed: u64) -> Scenario {
    Scenario::builder()
        .classical_nodes(16)
        .strategy(Strategy::Workflow)
        .seed(seed)
        .fleet(fleet(route))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every kernel in the workload is routed exactly once: the number of
    /// `KernelEnqueued` events per job equals the job's quantum-phase
    /// count (advisory walltimes, no failures ⇒ no re-runs).
    #[test]
    fn every_kernel_routed_exactly_once(
        jobs in prop::collection::vec(job_strategy(), 1..6),
        route in route_strategy(),
        seed in any::<u64>(),
    ) {
        let expected: BTreeMap<String, usize> = jobs
            .iter()
            .map(|j| {
                let kernels = j
                    .phases()
                    .iter()
                    .filter(|p| matches!(p, Phase::Quantum(_)))
                    .count();
                (j.name().to_string(), kernels)
            })
            .collect();
        let workload = Workload::from_jobs(jobs);
        let mut log = RouteLog::default();
        let out = FacilitySim::run_observed(&scenario(route, seed), &workload, &mut [&mut log])
            .expect("valid scenario");
        prop_assert_eq!(out.stats.failed_count(), 0);
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (name, _) in &log.routes {
            *seen.entry(name.clone()).or_insert(0) += 1;
        }
        for (name, kernels) in &expected {
            prop_assert_eq!(
                seen.get(name).copied().unwrap_or(0),
                *kernels,
                "{}: job `{}` must route each kernel exactly once",
                route.name(), name
            );
        }
    }

    /// Capacity and service-status invariants: kernels over a device's
    /// shot cap never land there, and the downed device serves nothing —
    /// under every routing policy.
    #[test]
    fn caps_and_downed_devices_are_respected(
        jobs in prop::collection::vec(job_strategy(), 1..6),
        route in route_strategy(),
        seed in any::<u64>(),
    ) {
        // Job names encode their kernel shot count (see job_strategy).
        let shots_of: BTreeMap<String, u32> = jobs
            .iter()
            .map(|j| {
                let shots = j
                    .kernels()
                    .map(Kernel::shots)
                    .max()
                    .unwrap_or(0);
                (j.name().to_string(), shots)
            })
            .collect();
        let workload = Workload::from_jobs(jobs);
        let mut log = RouteLog::default();
        FacilitySim::run_observed(&scenario(route, seed), &workload, &mut [&mut log])
            .expect("valid scenario");
        for (name, device) in &log.routes {
            prop_assert_ne!(
                *device, 2,
                "{}: `{}` routed to the downed device", route.name(), name
            );
            if *device == 0 {
                let shots = shots_of.get(name).copied().unwrap_or(0);
                prop_assert!(
                    shots <= SMALL_CAP,
                    "{}: `{}` ({} shots) exceeds device 0's cap of {}",
                    route.name(), name, shots, SMALL_CAP
                );
            }
        }
    }

    /// Routing is deterministic: the same `(scenario, seed)` produces the
    /// identical route sequence on every run, for every policy.
    #[test]
    fn routing_is_deterministic_per_policy(
        jobs in prop::collection::vec(job_strategy(), 1..5),
        seed in any::<u64>(),
    ) {
        let workload = Workload::from_jobs(jobs);
        for route in ALL_ROUTES {
            let sc = scenario(route, seed);
            let mut a = RouteLog::default();
            FacilitySim::run_observed(&sc, &workload, &mut [&mut a]).expect("valid");
            let mut b = RouteLog::default();
            FacilitySim::run_observed(&sc, &workload, &mut [&mut b]).expect("valid");
            prop_assert!(!a.routes.is_empty() || workload.is_empty());
            prop_assert_eq!(
                &a.routes, &b.routes,
                "{}: identical runs must route identically", route.name()
            );
        }
    }
}
