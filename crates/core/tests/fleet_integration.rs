//! Fleet integration tests: the byte-identity contract of the legacy
//! wrap, and the observable behaviour of the built-in routing policies
//! threaded through the full simulator.
//!
//! The load-bearing guarantee is the first one: a scenario whose device
//! list is wrapped via [`FleetSpec::from_legacy`] must produce the same
//! serialized [`Outcome`] bytes *and* the same observer event stream as
//! the fleetless path — the fleet layer is a strict superset, not a
//! rewrite, of the pre-fleet simulator.

use hpcqc_core::observer::{SimEvent, SimObserver};
use hpcqc_core::outcome::Outcome;
use hpcqc_core::scenario::Scenario;
use hpcqc_core::sim::{FacilitySim, SimError};
use hpcqc_core::strategy::Strategy;
use hpcqc_fleet::{FleetDevice, FleetSpec, RouteSpec};
use hpcqc_qpu::remote::AccessMode;
use hpcqc_qpu::technology::Technology;
use hpcqc_qpu::Kernel;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::campaign::Workload;
use hpcqc_workload::job::{JobSpec, Phase};

fn hybrid_job(name: &str, nodes: u32, iters: usize, shots: u32, submit_s: u64) -> JobSpec {
    let mut phases = Vec::new();
    for _ in 0..iters {
        phases.push(Phase::Classical(SimDuration::from_secs(45)));
        phases.push(Phase::Quantum(Kernel::sampling(shots)));
    }
    JobSpec::builder(name)
        .nodes(nodes)
        .submit(SimTime::from_secs(submit_s))
        .walltime(SimDuration::from_hours(6))
        .phases(phases)
        .build()
}

/// A QPU-contended workload: several hybrid tenants racing for devices.
fn contended_workload() -> Workload {
    let mut jobs = Vec::new();
    for i in 0..10u64 {
        jobs.push(hybrid_job(
            &format!("vqe-{i}"),
            2 + (i % 3) as u32,
            2 + (i % 2) as usize,
            500 + (i % 4) as u32 * 250,
            i * 40,
        ));
    }
    Workload::from_jobs(jobs)
}

fn outcome_bytes(outcome: &Outcome) -> Vec<u8> {
    serde_json::to_string(outcome)
        .expect("Outcome serializes")
        .into_bytes()
}

/// Records an order-sensitive digest of every emitted event.
#[derive(Debug, Default)]
struct EventTrace {
    entries: Vec<String>,
}

impl SimObserver for EventTrace {
    fn on_event(&mut self, now: SimTime, event: &SimEvent<'_>) {
        self.entries.push(format!("{now} {event:?}"));
    }
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::CoSchedule,
        Strategy::Workflow,
        Strategy::Vqpu { vqpus: 2 },
        Strategy::Adaptive { vqpus: 2 },
    ]
}

/// The tentpole guarantee: wrapping a legacy device list in a one-device
/// (or multi-device) fleet changes nothing — outcome bytes and the event
/// stream are identical.
#[test]
fn legacy_wrap_is_byte_identical() {
    let device_lists = [
        vec![Technology::Superconducting],
        vec![Technology::Superconducting, Technology::TrappedIon],
    ];
    let workload = contended_workload();
    for devices in &device_lists {
        for strategy in strategies() {
            let legacy = Scenario::builder()
                .classical_nodes(16)
                .devices(devices.clone())
                .strategy(strategy)
                .seed(99)
                .build();
            let mut wrapped = legacy.clone();
            wrapped.fleet = Some(FleetSpec::from_legacy(devices));

            let mut trace_a = EventTrace::default();
            let a = FacilitySim::run_observed(&legacy, &workload, &mut [&mut trace_a]).unwrap();
            let mut trace_b = EventTrace::default();
            let b = FacilitySim::run_observed(&wrapped, &workload, &mut [&mut trace_b]).unwrap();

            assert_eq!(
                outcome_bytes(&a),
                outcome_bytes(&b),
                "{strategy} over {} devices: wrapped fleet must serialize \
                 byte-identically to the legacy path",
                devices.len()
            );
            assert_eq!(
                trace_a.entries,
                trace_b.entries,
                "{strategy} over {} devices: event streams must match",
                devices.len()
            );
        }
    }
}

/// The wrap stays byte-identical with the stochastic knobs on: an access
/// model drawing from the shared RNG and periodic recalibration windows.
#[test]
fn legacy_wrap_identical_with_access_and_calibration() {
    let devices = vec![Technology::Superconducting, Technology::TrappedIon];
    let workload = contended_workload();
    let legacy = {
        let mut sc = Scenario::builder()
            .classical_nodes(16)
            .devices(devices.clone())
            .strategy(Strategy::Workflow)
            .seed(7)
            .device_calibration(true)
            .access(AccessMode::cloud(Technology::Superconducting))
            .build();
        sc.record_gantt = true;
        sc
    };
    let mut wrapped = legacy.clone();
    wrapped.fleet = Some(FleetSpec::from_legacy(&devices));
    let a = FacilitySim::run(&legacy, &workload).unwrap();
    let b = FacilitySim::run(&wrapped, &workload).unwrap();
    assert_eq!(
        outcome_bytes(&a),
        outcome_bytes(&b),
        "access RNG draws and recalibration windows must replay identically"
    );
}

/// Observer collecting which device each kernel was enqueued on.
#[derive(Debug, Default)]
struct RouteLog {
    routes: Vec<(String, usize)>,
}

impl SimObserver for RouteLog {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent<'_>) {
        if let SimEvent::KernelEnqueued { name, device, .. } = event {
            self.routes.push((name.to_string(), *device));
        }
    }
}

fn fleet_scenario(fleet: FleetSpec, strategy: Strategy) -> Scenario {
    Scenario::builder()
        .classical_nodes(16)
        .strategy(strategy)
        .seed(13)
        .fleet(fleet)
        .build()
}

/// A downed device serves nothing; every kernel reroutes to the healthy
/// one, under every routing policy.
#[test]
fn down_device_is_never_routed_to() {
    for route in hpcqc_fleet::ALL_ROUTES {
        let fleet = FleetSpec::new("one-down")
            .route(route)
            .device(FleetDevice::new("sc-a", Technology::Superconducting).with_down(true))
            .device(FleetDevice::new("sc-b", Technology::Superconducting));
        let sc = fleet_scenario(fleet, Strategy::CoSchedule);
        let mut log = RouteLog::default();
        let out = FacilitySim::run_observed(&sc, &contended_workload(), &mut [&mut log]).unwrap();
        assert!(!log.routes.is_empty());
        assert!(
            log.routes.iter().all(|(_, d)| *d == 1),
            "{route:?}: kernels must avoid the downed device"
        );
        assert_eq!(out.devices[0].tasks, 0, "{route:?}");
        assert_eq!(out.stats.failed_count(), 0, "{route:?}");
    }
}

/// Per-kernel shot caps steer heavy kernels to the uncapped device.
#[test]
fn shot_caps_steer_heavy_kernels() {
    let fleet = FleetSpec::new("capped")
        .route(RouteSpec::LeastLoaded)
        .device(FleetDevice::new("sc-small", Technology::Superconducting).with_shot_capacity(100))
        .device(FleetDevice::new("sc-big", Technology::Superconducting));
    let sc = fleet_scenario(fleet, Strategy::CoSchedule);
    // All kernels bring 1000 shots — ten times the small device's cap.
    let mut log = RouteLog::default();
    let workload = Workload::from_jobs(vec![
        hybrid_job("a", 2, 2, 1_000, 0),
        hybrid_job("b", 2, 2, 1_000, 10),
    ]);
    FacilitySim::run_observed(&sc, &workload, &mut [&mut log]).unwrap();
    assert!(!log.routes.is_empty());
    assert!(
        log.routes.iter().all(|(_, d)| *d == 1),
        "1000-shot kernels must avoid the 100-shot-capped device: {:?}",
        log.routes
    );
}

/// A kernel no fleet device may serve fails the run with a QPU error
/// (not a panic, not a silent misroute).
#[test]
fn unroutable_kernel_is_a_sim_error() {
    let fleet = FleetSpec::new("tiny")
        .device(FleetDevice::new("sc-a", Technology::Superconducting).with_shot_capacity(100));
    let sc = fleet_scenario(fleet, Strategy::CoSchedule);
    let workload = Workload::from_jobs(vec![hybrid_job("heavy", 2, 1, 50_000, 0)]);
    let err = FacilitySim::run(&sc, &workload).unwrap_err();
    assert!(
        matches!(err, SimError::Qpu(_)),
        "expected a QPU routing error, got {err}"
    );
}

/// Tech affinity concentrates kernels on the fastest capable technology.
#[test]
fn tech_affinity_prefers_fast_technology_end_to_end() {
    let fleet = FleetSpec::new("hetero")
        .route(RouteSpec::TechAffinity)
        .device(FleetDevice::new("ion-a", Technology::TrappedIon))
        .device(FleetDevice::new("sc-a", Technology::Superconducting));
    let sc = fleet_scenario(fleet, Strategy::Workflow);
    let workload = Workload::from_jobs(vec![
        hybrid_job("a", 2, 2, 500, 0),
        hybrid_job("b", 2, 2, 500, 20),
    ]);
    let mut log = RouteLog::default();
    let out = FacilitySim::run_observed(&sc, &workload, &mut [&mut log]).unwrap();
    assert!(
        log.routes.iter().all(|(_, d)| *d == 1),
        "superconducting executes faster; affinity must route there: {:?}",
        log.routes
    );
    assert_eq!(out.devices[0].name, "ion-a");
    assert_eq!(out.devices[0].tasks, 0);
    assert!(out.devices[1].tasks > 0);
}

/// Fleet device names flow through to the outcome's device summaries.
#[test]
fn fleet_names_appear_in_outcome() {
    let fleet = FleetSpec::new("named")
        .device(FleetDevice::new(
            "frankfurt-sc",
            Technology::Superconducting,
        ))
        .device(FleetDevice::new("juelich-ion", Technology::TrappedIon).with_qubits(24));
    let sc = fleet_scenario(fleet, Strategy::CoSchedule);
    let out = FacilitySim::run(&sc, &contended_workload()).unwrap();
    let names: Vec<&str> = out.devices.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(names, vec!["frankfurt-sc", "juelich-ion"]);
    assert_eq!(out.devices[1].technology, Technology::TrappedIon);
    assert_eq!(out.stats.failed_count(), 0);
}
