//! The numbered determinism & invariant rule set.
//!
//! Each rule is a static, token-level check scoped to the crates where the
//! property it protects can reach simulation state. The scopes are the
//! enforcement policy of this workspace, encoded in one place
//! ([`Rule::applies_to`]) so the CLI, the tests and the docs agree.

use serde::Serialize;
use std::fmt;

/// A determinism/invariant rule enforced by `hpcqc-lint`.
///
/// The rule ids are stable and machine-readable; suppressions reference
/// them by id (`// hpcqc-lint: allow(D004, reason = "...")`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Rule {
    /// No wall-clock reads (`SystemTime::now` / `Instant::now`) in
    /// simulation crates. Simulated time must come from the event loop;
    /// wall time is allowed only in the bench crate and the CLI facade,
    /// where it measures the simulator rather than feeding it.
    D001,
    /// No `HashMap`/`HashSet` in simulation/scheduler/cluster event
    /// paths. Hash iteration order is randomized across builds and can
    /// leak into simulation state; use `BTreeMap`/`BTreeSet` or carry an
    /// audited suppression proving the container is never iterated.
    D002,
    /// No entropy-based RNG seeding (`thread_rng`, `from_entropy`)
    /// anywhere outside tests. All randomness must descend from the
    /// scenario seed through `SimRng` forks.
    D003,
    /// No `unwrap()`/`expect()`/`panic!` in non-test library code of the
    /// core simulation crates. Use typed errors, or `debug_assert!` for
    /// invariants, or suppress with a written justification of why the
    /// invariant cannot fail.
    D004,
    /// No float `==`/`!=` comparisons (detected when either operand is a
    /// float literal). Exact float equality silently diverges across
    /// optimization levels; compare with tolerances or restructure.
    D005,
}

/// All rules, in id order.
pub const ALL_RULES: [Rule; 5] = [Rule::D001, Rule::D002, Rule::D003, Rule::D004, Rule::D005];

/// Crates whose sources feed the discrete-event simulation state
/// (everything but the bench harness and the CLI facade).
const SIM_CRATES: [&str; 12] = [
    "hpcqc-core",
    "hpcqc-sched",
    "hpcqc-simcore",
    "hpcqc-cluster",
    "hpcqc-qpu",
    "hpcqc-fleet",
    "hpcqc-faults",
    "hpcqc-workload",
    "hpcqc-metrics",
    "hpcqc-trace",
    "hpcqc-sweep",
    "hpcqc-gen",
];

/// Crates whose event paths can turn container iteration order into
/// simulation state (the D002 scope). `hpcqc-trace` is in scope because
/// the attribution ledgers fold the event stream into byte-identical
/// output — hash iteration order there would leak into artifacts.
const EVENT_PATH_CRATES: [&str; 7] = [
    "hpcqc-core",
    "hpcqc-sched",
    "hpcqc-simcore",
    "hpcqc-cluster",
    "hpcqc-fleet",
    "hpcqc-faults",
    "hpcqc-trace",
];

/// Crates whose library code must be panic-free (the D004 scope).
const PANIC_FREE_CRATES: [&str; 9] = [
    "hpcqc-core",
    "hpcqc-sched",
    "hpcqc-simcore",
    "hpcqc-cluster",
    "hpcqc-qpu",
    "hpcqc-fleet",
    "hpcqc-faults",
    "hpcqc-workload",
    "hpcqc-trace",
];

impl Rule {
    /// The stable rule id (`"D001"` ... `"D005"`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
        }
    }

    /// One-line summary, shown by `--list-rules` and in findings.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "no wall-clock reads (SystemTime::now / Instant::now) in sim crates",
            Rule::D002 => {
                "no HashMap/HashSet in sim/sched/cluster event paths (hash order can reach state)"
            }
            Rule::D003 => "no entropy-based RNG seeding (thread_rng / from_entropy) outside tests",
            Rule::D004 => "no unwrap()/expect()/panic! in non-test core library code",
            Rule::D005 => "no float ==/!= comparisons (float-literal operands)",
        }
    }

    /// Parses a rule id (`"D001"`). Returns `None` for unknown ids.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "D004" => Some(Rule::D004),
            "D005" => Some(Rule::D005),
            _ => None,
        }
    }

    /// Whether the rule is in force for the crate named `package`
    /// (Cargo package name, e.g. `"hpcqc-core"`).
    pub fn applies_to(self, package: &str) -> bool {
        match self {
            Rule::D001 => SIM_CRATES.contains(&package) || package == "hpcqc-lint",
            Rule::D002 => EVENT_PATH_CRATES.contains(&package),
            Rule::D003 | Rule::D005 => true,
            Rule::D004 => PANIC_FREE_CRATES.contains(&package),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::parse(rule.id()), Some(rule));
        }
        assert_eq!(Rule::parse("D999"), None);
    }

    #[test]
    fn scopes_match_policy() {
        assert!(Rule::D001.applies_to("hpcqc-core"));
        assert!(Rule::D001.applies_to("hpcqc-trace"));
        assert!(!Rule::D001.applies_to("hpcqc-bench"));
        assert!(!Rule::D001.applies_to("hpcqc"));
        assert!(Rule::D001.applies_to("hpcqc-faults"));
        assert!(Rule::D002.applies_to("hpcqc-sched"));
        assert!(Rule::D002.applies_to("hpcqc-fleet"));
        assert!(Rule::D002.applies_to("hpcqc-faults"));
        assert!(Rule::D002.applies_to("hpcqc-trace"));
        assert!(!Rule::D002.applies_to("hpcqc-metrics"));
        assert!(Rule::D003.applies_to("hpcqc-bench"));
        assert!(Rule::D004.applies_to("hpcqc-fleet"));
        assert!(Rule::D004.applies_to("hpcqc-faults"));
        assert!(Rule::D004.applies_to("hpcqc-workload"));
        assert!(Rule::D004.applies_to("hpcqc-trace"));
        assert!(!Rule::D004.applies_to("hpcqc-sweep"));
        assert!(Rule::D005.applies_to("hpcqc"));
    }
}
