//! CLI for `hpcqc-lint`. See the crate docs for the rule set.
//!
//! ```text
//! hpcqc-lint [--root PATH] [--format text|json] [--deny] [--list-rules] [--show-suppressed]
//! ```
//!
//! Exit codes: `0` clean (or findings present without `--deny`), `1`
//! unsuppressed findings under `--deny`, `2` usage or I/O error.

use hpcqc_lint::{scan_workspace, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    deny: bool,
    list_rules: bool,
    show_suppressed: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny: false,
        list_rules: false,
        show_suppressed: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path")?);
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--show-suppressed" => args.show_suppressed = true,
            "--help" | "-h" => {
                println!(
                    "hpcqc-lint [--root PATH] [--format text|json] [--deny] \
                     [--list-rules] [--show-suppressed]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("hpcqc-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in ALL_RULES {
            println!("{}  {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }
    // Default to the workspace root when invoked from a member directory
    // (cargo run -p sets cwd to the invocation dir, which is the root in
    // CI; locally we search upward for the workspace manifest).
    let root = workspace_root(&args.root);
    let report = match scan_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("hpcqc-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(err) => {
                eprintln!("hpcqc-lint: report serialization failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        for finding in &report.findings {
            if !finding.suppressed || args.show_suppressed {
                println!("{finding}");
            }
        }
        println!(
            "hpcqc-lint: {} files, {} findings ({} suppressed, {} unsuppressed)",
            report.files_scanned,
            report.findings.len(),
            report.suppressed,
            report.unsuppressed
        );
    }
    if args.deny && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`, falling back to `start` itself.
fn workspace_root(start: &std::path::Path) -> PathBuf {
    let mut dir = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}
