//! `hpcqc-lint`: the workspace determinism & invariant static-analysis
//! pass.
//!
//! Every result this reproduction ships rests on determinism: the golden
//! smoke-grid fixture, byte-identical streamed-vs-materialized runs, and
//! the sweep engine's common-random-numbers seeding. One stray hash-order
//! iteration or wall-clock read silently breaks all of it. This crate
//! enforces the rules *statically*, before the golden diffs would catch a
//! regression after the fact:
//!
//! | Rule | Property |
//! |------|----------|
//! | [`Rule::D001`] | no `SystemTime::now` / `Instant::now` in sim crates |
//! | [`Rule::D002`] | no `HashMap`/`HashSet` in event-path crates |
//! | [`Rule::D003`] | no `thread_rng` / `from_entropy` outside tests |
//! | [`Rule::D004`] | no `unwrap()`/`expect()`/`panic!` in core library code |
//! | [`Rule::D005`] | no float `==`/`!=` comparisons |
//!
//! The scanner is a hand-rolled lexer (no `syn`, no new dependencies)
//! that understands comments, strings, test regions (`#[cfg(test)]` /
//! `#[test]`, plus `tests/`/`benches/` trees, which are never scanned)
//! and inline suppressions:
//!
//! ```text
//! // hpcqc-lint: allow(D004, reason = "id was checked live two lines up")
//! ```
//!
//! The `reason` is mandatory — a suppression without one is itself a
//! finding (`S001`). Run it locally with:
//!
//! ```text
//! cargo run -p hpcqc-lint -- --deny
//! ```

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod walk;

pub use report::{Finding, Report};
pub use rules::{Rule, ALL_RULES};
pub use scan::scan_source;

use std::io;
use std::path::Path;

/// Scans the whole workspace rooted at `root` and returns the report.
///
/// # Errors
///
/// Propagates I/O errors from workspace discovery or file reads.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let members = walk::discover(root)?;
    let mut findings = Vec::new();
    let mut files = 0usize;
    for member in &members {
        for path in &member.sources {
            let src = std::fs::read_to_string(path)?;
            let display = path
                .strip_prefix(root)
                .unwrap_or(path)
                .display()
                .to_string();
            findings.extend(scan_source(&member.package, &display, &src));
            files += 1;
        }
    }
    Ok(Report::new(files, findings))
}
