//! Workspace discovery: find member crates and their `src/` trees.
//!
//! Deliberately minimal — no TOML parser, no cargo metadata. A member is
//! any directory with a `Cargo.toml` under `crates/`, plus the workspace
//! root itself (the facade crate). Vendored dependency subsets under
//! `vendor/` are third-party code and are not scanned; neither are
//! `tests/`, `benches/` or `examples/` trees (test code is out of scope
//! for every rule).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace member to scan.
#[derive(Debug)]
pub struct Member {
    /// The Cargo package name (e.g. `hpcqc-core`).
    pub package: String,
    /// Every `.rs` file under the member's `src/`, sorted.
    pub sources: Vec<PathBuf>,
}

/// Discovers scannable members under `root` (the workspace root).
///
/// # Errors
///
/// Propagates I/O errors from directory walking.
pub fn discover(root: &Path) -> io::Result<Vec<Member>> {
    let mut members = Vec::new();
    if let Some(member) = member_at(root)? {
        members.push(member);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            if let Some(member) = member_at(&dir)? {
                members.push(member);
            }
        }
    }
    members.sort_by(|a, b| a.package.cmp(&b.package));
    Ok(members)
}

fn member_at(dir: &Path) -> io::Result<Option<Member>> {
    let manifest = dir.join("Cargo.toml");
    if !manifest.is_file() {
        return Ok(None);
    }
    let Some(package) = package_name(&fs::read_to_string(&manifest)?) else {
        return Ok(None);
    };
    let src = dir.join("src");
    if !src.is_dir() {
        return Ok(None);
    }
    let mut sources = Vec::new();
    collect_rs(&src, &mut sources)?;
    sources.sort();
    Ok(Some(Member { package, sources }))
}

/// Extracts `name = "..."` from the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses() {
        let toml =
            "[workspace]\nmembers = []\n[package]\nname = \"hpcqc-core\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml), Some("hpcqc-core".to_string()));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
