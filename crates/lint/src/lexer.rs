//! A minimal Rust lexer: just enough tokenization for the determinism
//! rules, with exact line numbers and comment capture.
//!
//! The lexer understands line/block comments (including nesting), string
//! and raw-string literals, byte strings, char literals vs. lifetimes,
//! numeric literals (classifying floats), identifiers, and a small set of
//! multi-character punctuators the rules match on (`::`, `==`, `!=`,
//! `..`). Everything else becomes a single-character punct token. It never
//! allocates token text for punctuation and never interprets macros — the
//! rules work on flat token patterns.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unwrap`, `for`, ...).
    Ident(String),
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-3`, `0.5f32`) — drives rule D005.
    Float,
    /// A string/char/byte literal of any flavor (contents dropped).
    Literal,
    /// A lifetime (`'a`) — kept distinct so it is never a char literal.
    Lifetime,
    /// Punctuation: `::`, `==`, `!=`, `..` are single tokens; everything
    /// else is one character.
    Punct(&'static str),
    /// A single-character punct not in the multi-char set.
    Char(char),
}

/// One token with its source position (1-based line, 1-based column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification and (for identifiers) text.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column the token starts on.
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// True when the token is the given punctuator.
    pub fn is_punct(&self, p: &str) -> bool {
        match &self.kind {
            TokenKind::Punct(s) => *s == p,
            TokenKind::Char(c) => p.len() == 1 && p.starts_with(*c),
            _ => false,
        }
    }
}

/// A comment captured during lexing (suppression directives live here).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when the comment is the only thing on its line (no code
    /// before it) — such suppressions attach to the *next* code line.
    pub own_line: bool,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Never fails: unrecognized bytes become `Char` tokens,
/// and unterminated literals simply run to end-of-file — the scanner is a
/// linter, not a compiler front-end.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut line_has_code = false;
    let mut code_line = 0u32;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if line != code_line {
            line_has_code = false;
        }
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let raw = &src[start..cur.pos];
                let text = raw.trim_start_matches('/').trim_start_matches('!').trim();
                comments.push(Comment {
                    text: text.to_string(),
                    line,
                    own_line: !(line_has_code && code_line == line),
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let raw = &src[start..cur.pos];
                let text = raw
                    .trim_start_matches('/')
                    .trim_start_matches('*')
                    .trim_end_matches('/')
                    .trim_end_matches('*')
                    .trim();
                comments.push(Comment {
                    text: text.to_string(),
                    line,
                    own_line: !(line_has_code && code_line == line),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    col,
                });
                line_has_code = true;
                code_line = line;
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                lex_raw_or_byte(&mut cur);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    col,
                });
                line_has_code = true;
                code_line = line;
            }
            b'\'' => {
                let kind = lex_quote(&mut cur);
                tokens.push(Token { kind, line, col });
                line_has_code = true;
                code_line = line;
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let text = &src[start..cur.pos];
                tokens.push(Token {
                    kind: TokenKind::Ident(text.to_string()),
                    line,
                    col,
                });
                line_has_code = true;
                code_line = line;
            }
            _ if b.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                tokens.push(Token { kind, line, col });
                line_has_code = true;
                code_line = line;
            }
            _ => {
                let kind = lex_punct(&mut cur);
                tokens.push(Token { kind, line, col });
                line_has_code = true;
                code_line = line;
            }
        }
    }
    Lexed { tokens, comments }
}

fn starts_raw_or_byte_literal(cur: &Cursor<'_>) -> bool {
    // r"...", r#"..."#, br"...", b"...", b'...' — but NOT identifiers like
    // `raw` or `before`. Only treat as a literal when the quote follows
    // immediately (possibly through `#`s or a `r`/`b` pair).
    let first = cur.peek_at(0);
    let second = cur.peek_at(1);
    let mut i = match (first, second) {
        (Some(b'b'), Some(b'r')) => 2,
        (Some(b'r') | Some(b'b'), _) => 1,
        _ => return false,
    };
    while cur.peek_at(i) == Some(b'#') {
        i += 1;
    }
    matches!(cur.peek_at(i), Some(b'"')) || (i == 1 && first == Some(b'b') && second == Some(b'\''))
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

fn lex_raw_or_byte(cur: &mut Cursor<'_>) {
    // Consume the `r` / `b` / `br` prefix.
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        // Byte char literal b'x'.
        cur.bump();
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        return;
    }
    let raw = cur.peek() == Some(b'r');
    if raw {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        return; // Not actually a literal; prefix chars were already consumed
                // as best-effort (identifier case is filtered by the caller).
    }
    cur.bump();
    if !raw {
        // Plain b"..." with escapes.
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        return;
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    'outer: while let Some(b) = cur.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek_at(i) != Some(b'#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// `'a` (lifetime) vs `'x'` (char literal): a quote closes a char literal
/// within a couple of characters; a lifetime has none.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening '
    if cur.peek() == Some(b'\\') {
        // Escaped char literal.
        cur.bump();
        while let Some(b) = cur.bump() {
            if b == b'\'' {
                break;
            }
        }
        return TokenKind::Literal;
    }
    // One (possibly multi-byte) char then a closing quote → char literal;
    // otherwise it is a lifetime and we consume the identifier.
    let mut i = 1usize;
    while cur.peek_at(i).is_some_and(|b| b >= 0x80) && i < 4 {
        i += 1;
    }
    if cur.peek_at(i) == Some(b'\'') {
        for _ in 0..=i {
            cur.bump();
        }
        return TokenKind::Literal;
    }
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::Lifetime
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    // Hex/octal/binary prefixes never become floats.
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        )
    {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            cur.bump();
        }
        return TokenKind::Int;
    }
    while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
    // Fractional part: `.` followed by a digit (or end/non-ident: `1.`),
    // but not `..` (range) and not `.method()` (tuple/method access).
    if cur.peek() == Some(b'.')
        && cur.peek_at(1) != Some(b'.')
        && !cur.peek_at(1).is_some_and(is_ident_start)
    {
        float = true;
        cur.bump();
        while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let mut j = 1usize;
        if matches!(cur.peek_at(1), Some(b'+') | Some(b'-')) {
            j = 2;
        }
        if cur.peek_at(j).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            for _ in 0..j {
                cur.bump();
            }
            while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.bump();
            }
        }
    }
    // Suffix (i32, u64, f32, f64, usize, ...).
    if cur.peek().is_some_and(is_ident_start) {
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix = &cur.src[start..cur.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

fn lex_punct(cur: &mut Cursor<'_>) -> TokenKind {
    let a = cur.bump().expect("caller checked peek");
    let b = cur.peek();
    let joined = match (a, b) {
        (b':', Some(b':')) => Some("::"),
        (b'=', Some(b'=')) => Some("=="),
        (b'!', Some(b'=')) => Some("!="),
        (b'.', Some(b'.')) => Some(".."),
        _ => None,
    };
    if let Some(p) = joined {
        cur.bump();
        return TokenKind::Punct(p);
    }
    TokenKind::Char(a as char)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let x = "unwrap inside a string";
            // unwrap inside a comment
            /* HashMap in a block comment */
            let y = r#"thread_rng in a raw string"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap"));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn float_literals_classified() {
        let kinds: Vec<_> = lex("1.0 2e3 0.5f32 7 0xff 1_000 3f64")
            .tokens
            .iter()
            .map(|t| t.kind.clone())
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
            ]
        );
    }

    #[test]
    fn ranges_and_tuple_access_are_not_floats() {
        let kinds: Vec<_> = lex("0..10 x.0 1..=2")
            .tokens
            .iter()
            .map(|t| t.kind.clone())
            .collect();
        assert!(kinds.contains(&TokenKind::Punct("..")));
        assert!(!kinds.contains(&TokenKind::Float));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn multichar_puncts_join() {
        let toks = lex("a == b != c::d");
        assert!(toks.tokens.iter().any(|t| t.is_punct("==")));
        assert!(toks.tokens.iter().any(|t| t.is_punct("!=")));
        assert!(toks.tokens.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn own_line_comments_flagged() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 5);
    }
}
