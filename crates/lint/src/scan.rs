//! The per-file scanner: test-region detection, suppression parsing, and
//! the token-pattern passes for rules D001–D005.

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::report::Finding;
use crate::rules::Rule;

/// Longest run of identical-prefix suppression lines considered when a
/// suppression comment sits on its own line: it covers the next *code*
/// line, skipping over further suppression/comment-only lines.
#[derive(Debug)]
struct Suppression {
    rules: Vec<Rule>,
    reason: String,
    /// The code line this suppression covers.
    covers: u32,
    /// Where the directive itself lives (for S001 diagnostics).
    at: u32,
}

/// Scans one source file belonging to Cargo package `package` and returns
/// every finding, including suppressed ones (marked as such) and `S001`
/// malformed-suppression findings.
pub fn scan_source(package: &str, file: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let test_regions = test_regions(&lexed.tokens);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    let code_lines: Vec<u32> = {
        let mut lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        lines.dedup();
        lines
    };

    let mut findings = Vec::new();
    let suppressions = parse_suppressions(&lexed.comments, &code_lines, file, &mut findings);

    let mut raw = Vec::new();
    rule_passes(package, file, &lexed.tokens, &mut raw);

    for mut finding in raw {
        if in_test(finding.line) {
            continue;
        }
        if let Some(supp) = suppressions
            .iter()
            .find(|s| s.covers == finding.line && s.rules.contains(&finding.rule_enum()))
        {
            finding.suppressed = true;
            finding.reason = Some(supp.reason.clone());
        }
        findings.push(finding);
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

fn rule_passes(package: &str, file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let active: Vec<Rule> = crate::rules::ALL_RULES
        .iter()
        .copied()
        .filter(|r| r.applies_to(package))
        .collect();
    let on = |r: Rule| active.contains(&r);

    for (i, tok) in tokens.iter().enumerate() {
        match &tok.kind {
            TokenKind::Ident(name) => match name.as_str() {
                // D001: `SystemTime::now` / `Instant::now`.
                "SystemTime" | "Instant"
                    if on(Rule::D001)
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                        && tokens.get(i + 2).is_some_and(|t| t.is_ident("now")) =>
                {
                    out.push(Finding::new(
                        Rule::D001,
                        file,
                        tok,
                        format!("wall-clock read `{name}::now` in a simulation crate"),
                    ));
                }
                // D002: any HashMap/HashSet mention in event-path crates.
                "HashMap" | "HashSet" if on(Rule::D002) => {
                    out.push(Finding::new(
                        Rule::D002,
                        file,
                        tok,
                        format!(
                            "`{name}` in an event-path crate: hash iteration order can reach \
                             simulation state; use BTreeMap/BTreeSet or justify via suppression"
                        ),
                    ));
                }
                // D003: entropy-based seeding.
                "thread_rng" | "from_entropy" if on(Rule::D003) => {
                    out.push(Finding::new(
                        Rule::D003,
                        file,
                        tok,
                        format!("entropy-based RNG seeding `{name}` outside tests"),
                    ));
                }
                // D004: `.unwrap()` / `.expect(` / `panic!`.
                "unwrap" | "expect"
                    if on(Rule::D004)
                        && i > 0
                        && tokens[i - 1].is_punct(".")
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct("(")) =>
                {
                    out.push(Finding::new(
                        Rule::D004,
                        file,
                        tok,
                        format!("`.{name}()` in non-test library code; use a typed error"),
                    ));
                }
                "panic" if on(Rule::D004) && tokens.get(i + 1).is_some_and(|t| t.is_punct("!")) => {
                    out.push(Finding::new(
                        Rule::D004,
                        file,
                        tok,
                        "`panic!` in non-test library code; use a typed error".to_string(),
                    ));
                }
                _ => {}
            },
            // D005: `==` / `!=` with a float-literal operand.
            TokenKind::Punct(p @ ("==" | "!=")) if on(Rule::D005) => {
                let float_lhs = i > 0 && tokens[i - 1].kind == TokenKind::Float;
                let float_rhs = tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Float);
                if float_lhs || float_rhs {
                    out.push(Finding::new(
                        Rule::D005,
                        file,
                        tok,
                        format!("float `{p}` comparison; use a tolerance or restructure"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items and `#[test]`
/// functions. Detected by brace-matching from the attribute: everything
/// from the attribute line to the item's closing brace (or `;`).
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute's tokens up to the matching `]`.
            let start_line = tokens[i].line;
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut is_test_attr = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    is_test_attr = true;
                }
                j += 1;
            }
            if is_test_attr {
                // Skip any further attributes, then brace-match the item.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct("#")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct("[") {
                            d += 1;
                        } else if tokens[k].is_punct("]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut end_line = start_line;
                let mut brace_depth = 0u32;
                let mut entered = false;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        brace_depth += 1;
                        entered = true;
                    } else if tokens[k].is_punct("}") {
                        brace_depth = brace_depth.saturating_sub(1);
                        if entered && brace_depth == 0 {
                            end_line = tokens[k].line;
                            break;
                        }
                    } else if !entered && tokens[k].is_punct(";") {
                        // Braceless item (e.g. `mod tests;`).
                        end_line = tokens[k].line;
                        break;
                    }
                    k += 1;
                }
                if k >= tokens.len() {
                    end_line = tokens.last().map_or(start_line, |t| t.line);
                }
                regions.push((start_line, end_line));
                i = k;
            }
        }
        i += 1;
    }
    regions
}

/// Parses `hpcqc-lint: allow(...)` directives out of the comment stream.
/// Malformed directives (unknown rule, missing mandatory reason, bad
/// syntax) are reported as `S001` findings and do not suppress anything.
fn parse_suppressions(
    comments: &[Comment],
    code_lines: &[u32],
    file: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for comment in comments {
        let Some(rest) = comment.text.strip_prefix("hpcqc-lint:") else {
            continue;
        };
        let covers = if comment.own_line {
            // A standalone directive covers the next code line.
            match code_lines.iter().find(|&&l| l > comment.line) {
                Some(&l) => l,
                None => {
                    findings.push(Finding::syntax(
                        file,
                        comment.line,
                        "suppression at end of file covers no code".to_string(),
                    ));
                    continue;
                }
            }
        } else {
            comment.line
        };
        match parse_allow(rest.trim()) {
            Ok((rules, reason)) => out.push(Suppression {
                rules,
                reason,
                covers,
                at: comment.line,
            }),
            Err(msg) => findings.push(Finding::syntax(file, comment.line, msg)),
        }
    }
    // Two directives covering the same line merge naturally (both are
    // consulted); nothing to do. Keep the `at` field used.
    out.sort_by_key(|s| s.at);
    out
}

/// Parses `allow(D00x[, D00y...], reason = "...")`.
fn parse_allow(s: &str) -> Result<(Vec<Rule>, String), String> {
    let Some(inner) = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .and_then(|t| t.rfind(')').map(|i| &t[..i]))
    else {
        return Err(format!(
            "malformed suppression `{s}`: expected `allow(D00x, reason = \"...\")`"
        ));
    };
    let mut rules = Vec::new();
    let mut reason = None;
    for part in split_top_level(inner) {
        let part = part.trim();
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim_start();
            let Some(r) = r.strip_prefix('=') else {
                return Err("suppression `reason` must use `reason = \"...\"`".to_string());
            };
            let r = r.trim();
            let unquoted = r
                .strip_prefix('"')
                .and_then(|t| t.strip_suffix('"'))
                .ok_or_else(|| "suppression reason must be a quoted string".to_string())?;
            if unquoted.trim().is_empty() {
                return Err("suppression reason must not be empty".to_string());
            }
            reason = Some(unquoted.to_string());
        } else if let Some(rule) = Rule::parse(part) {
            rules.push(rule);
        } else {
            return Err(format!("unknown rule id `{part}` in suppression"));
        }
    }
    if rules.is_empty() {
        return Err("suppression names no rules".to_string());
    }
    let Some(reason) = reason else {
        return Err("suppression is missing its mandatory `reason = \"...\"`".to_string());
    };
    Ok((rules, reason))
}

/// Splits on commas not inside quotes (the reason string may contain
/// commas).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(pkg: &str, src: &str) -> Vec<Finding> {
        scan_source(pkg, "mem.rs", src)
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = r#"
            pub fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { None::<u32>.unwrap(); }
            }
        "#;
        let findings = scan("hpcqc-core", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn trailing_and_standalone_suppressions_cover() {
        let src = r#"
            fn a(x: Option<u32>) -> u32 {
                // hpcqc-lint: allow(D004, reason = "checked by caller")
                x.unwrap()
            }
            fn b(x: Option<u32>) -> u32 {
                x.unwrap() // hpcqc-lint: allow(D004, reason = "ditto")
            }
        "#;
        let findings = scan("hpcqc-core", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.suppressed));
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        let src = "// hpcqc-lint: allow(D004)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = scan("hpcqc-core", src);
        let codes: Vec<&str> = findings.iter().map(|f| f.code.as_str()).collect();
        assert!(codes.contains(&"S001"), "{findings:?}");
        assert!(
            findings.iter().any(|f| f.code == "D004" && !f.suppressed),
            "an invalid suppression must not suppress"
        );
    }

    #[test]
    fn suppression_for_wrong_rule_does_not_cover() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() // hpcqc-lint: allow(D001, reason = \"misfiled\")\n}\n";
        let findings = scan("hpcqc-core", src);
        assert!(findings.iter().any(|f| f.code == "D004" && !f.suppressed));
    }

    #[test]
    fn d005_fires_only_with_float_literal_operand() {
        let src = "fn f(x: f64, n: u32) -> bool { x == 0.0 || n == 3 }\n";
        let findings = scan("hpcqc-metrics", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, "D005");
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(3) + x.unwrap_or_default() }\n";
        assert!(scan("hpcqc-core", src).is_empty());
    }

    #[test]
    fn scope_gates_rules_by_package() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan("hpcqc-sched", src).len(), 1);
        assert!(scan("hpcqc-metrics", src).is_empty());
        let timing = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(scan("hpcqc-core", timing).len(), 1);
        assert!(scan("hpcqc-bench", timing).is_empty());
    }
}
