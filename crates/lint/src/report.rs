//! Findings and the machine-readable report.

use crate::lexer::Token;
use crate::rules::Rule;
use serde::Serialize;
use std::fmt;

/// One lint finding: a rule violation (codes `D001`–`D005`) or a
/// malformed suppression directive (code `S001`).
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// The stable finding code (`"D004"`, `"S001"`, ...).
    pub code: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// True when an inline `hpcqc-lint: allow(...)` covers this finding.
    pub suppressed: bool,
    /// The suppression's mandatory reason, when suppressed.
    pub reason: Option<String>,
}

impl Finding {
    pub(crate) fn new(rule: Rule, file: &str, tok: &Token, message: String) -> Self {
        Finding {
            code: rule.id().to_string(),
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            suppressed: false,
            reason: None,
        }
    }

    pub(crate) fn syntax(file: &str, line: u32, message: String) -> Self {
        Finding {
            code: "S001".to_string(),
            file: file.to_string(),
            line,
            col: 1,
            message,
            suppressed: false,
            reason: None,
        }
    }

    pub(crate) fn rule_enum(&self) -> Rule {
        Rule::parse(&self.code).unwrap_or(Rule::D001)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.code, self.message
        )?;
        if self.suppressed {
            write!(f, " [suppressed: {}]", self.reason.as_deref().unwrap_or(""))?;
        }
        Ok(())
    }
}

/// The full machine-readable report emitted by `--format json`.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings not covered by a suppression — what `--deny` gates on.
    pub unsuppressed: usize,
    /// Findings covered by an audited suppression.
    pub suppressed: usize,
    /// Every finding, suppressed and not, in file/line order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Builds a report over `findings` from a scan of `files_scanned`
    /// files.
    pub fn new(files_scanned: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col))
        });
        let suppressed = findings.iter().filter(|f| f.suppressed).count();
        Report {
            files_scanned,
            unsuppressed: findings.len() - suppressed,
            suppressed,
            findings,
        }
    }

    /// True when nothing unsuppressed was found (the `--deny` gate).
    pub fn clean(&self) -> bool {
        self.unsuppressed == 0
    }
}
