//! Integration tests driving `hpcqc-lint` over the fixture files in
//! `tests/fixtures/` — each rule is proven *live* (fires on a real file,
//! reports the right `file:line`), suppressions with reasons suppress,
//! and reason-less suppressions are rejected.
//!
//! The fixture files live under `tests/` deliberately: the workspace
//! walker scans only `src/` trees, so they never pollute the real lint
//! report, and cargo never compiles non-top-level test files.

use hpcqc_lint::{scan_source, Finding};
use std::path::Path;

fn scan_fixture(package: &str, name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    scan_source(package, name, &src)
}

fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.suppressed).collect()
}

#[test]
fn d001_fires_on_wall_clock_reads() {
    let findings = scan_fixture("hpcqc-core", "d001_wall_clock.rs");
    let live = unsuppressed(&findings);
    assert_eq!(live.len(), 1, "exactly one D001: {live:?}");
    assert_eq!(live[0].code, "D001");
    assert_eq!(live[0].file, "d001_wall_clock.rs");
    assert_eq!(live[0].line, 4, "Instant::now() is on line 4");
}

#[test]
fn d001_is_scoped_to_simulation_crates() {
    // The benchmark harness measures host wall-clock time on purpose.
    let findings = scan_fixture("hpcqc-bench", "d001_wall_clock.rs");
    assert!(
        unsuppressed(&findings).is_empty(),
        "D001 must not apply to hpcqc-bench: {findings:?}"
    );
}

#[test]
fn d002_fires_on_hash_collections() {
    let findings = scan_fixture("hpcqc-sched", "d002_hash_collections.rs");
    let live = unsuppressed(&findings);
    assert!(!live.is_empty(), "HashMap uses must fire D002");
    assert!(live.iter().all(|f| f.code == "D002"), "{live:?}");
    assert_eq!(live[0].line, 3, "the `use` import is on line 3");
}

#[test]
fn d002_is_scoped_to_event_path_crates() {
    let findings = scan_fixture("hpcqc-metrics", "d002_hash_collections.rs");
    assert!(
        unsuppressed(&findings).is_empty(),
        "D002 must not apply outside event-path crates: {findings:?}"
    );
}

#[test]
fn d003_fires_outside_tests_only() {
    let findings = scan_fixture("hpcqc-workload", "d003_ambient_rng.rs");
    let live = unsuppressed(&findings);
    assert_eq!(live.len(), 1, "only the non-test thread_rng: {live:?}");
    assert_eq!(live[0].code, "D003");
    assert_eq!(live[0].line, 4);
}

#[test]
fn d004_fires_on_unwrap_expect_and_panic() {
    let findings = scan_fixture("hpcqc-core", "d004_panics.rs");
    let live = unsuppressed(&findings);
    let codes: Vec<(&str, u32)> = live.iter().map(|f| (f.code.as_str(), f.line)).collect();
    assert_eq!(
        codes,
        vec![("D004", 4), ("D004", 8), ("D004", 12)],
        "unwrap (4), expect (8) and panic! (12) outside tests: {live:?}"
    );
}

#[test]
fn d005_fires_on_float_eq_but_not_ranges() {
    let findings = scan_fixture("hpcqc-simcore", "d005_float_eq.rs");
    let live = unsuppressed(&findings);
    assert_eq!(live.len(), 1, "only the f64 comparison: {live:?}");
    assert_eq!(live[0].code, "D005");
    assert_eq!(live[0].line, 4);
}

#[test]
fn suppression_with_reason_suppresses() {
    let findings = scan_fixture("hpcqc-core", "suppressed_ok.rs");
    assert!(
        unsuppressed(&findings).is_empty(),
        "both forms must suppress: {findings:?}"
    );
    let suppressed: Vec<_> = findings.iter().filter(|f| f.suppressed).collect();
    assert_eq!(suppressed.len(), 2, "{findings:?}");
    for f in &suppressed {
        assert_eq!(
            f.reason.as_deref(),
            Some("caller guarantees non-empty input")
        );
    }
}

#[test]
fn suppression_without_reason_is_a_finding_and_does_not_suppress() {
    let findings = scan_fixture("hpcqc-core", "suppression_no_reason.rs");
    let live = unsuppressed(&findings);
    let codes: Vec<&str> = live.iter().map(|f| f.code.as_str()).collect();
    assert!(
        codes.contains(&"S001"),
        "the malformed suppression itself must be reported: {live:?}"
    );
    assert!(
        codes.contains(&"D004"),
        "the underlying violation must stay unsuppressed: {live:?}"
    );
}
