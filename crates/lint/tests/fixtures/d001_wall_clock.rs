//! Fixture: D001 — wall-clock read in simulation code.

pub fn elapsed() -> std::time::Instant {
    std::time::Instant::now()
}
