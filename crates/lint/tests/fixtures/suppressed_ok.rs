//! Fixture: a valid suppression with a mandatory reason — both the
//! trailing-comment and standalone-comment forms.

pub fn audited(values: &[u32]) -> u32 {
    *values.first().unwrap() // hpcqc-lint: allow(D004, reason = "caller guarantees non-empty input")
}

pub fn audited_standalone(values: &[u32]) -> u32 {
    // hpcqc-lint: allow(D004, reason = "caller guarantees non-empty input")
    *values.first().unwrap()
}
