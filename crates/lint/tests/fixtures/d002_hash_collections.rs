//! Fixture: D002 — hash-ordered collection in an event-path crate.

use std::collections::HashMap;

pub fn tally(names: &[String]) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    for name in names {
        *counts.entry(name.clone()).or_insert(0) += 1;
    }
    counts
}
