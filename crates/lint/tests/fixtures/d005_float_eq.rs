//! Fixture: D005 — exact float comparison.

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

pub fn ranges_are_not_floats(n: usize) -> usize {
    // `0..10` and tuple access `pair.0` must NOT be classified as floats.
    let pair = (n, n);
    (0..10).filter(|i| *i == pair.0).count()
}
