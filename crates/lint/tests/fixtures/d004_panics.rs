//! Fixture: D004 — panicking calls in non-test library code.

pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn checked(map: &std::collections::BTreeMap<u32, u32>) -> u32 {
    *map.get(&0).expect("key zero present")
}

pub fn boom() {
    panic!("unreachable by construction");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
