//! Fixture: D003 — ambient-entropy RNG outside tests.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn rng_in_tests_is_fine() {
        let _rng = rand::thread_rng();
    }
}
