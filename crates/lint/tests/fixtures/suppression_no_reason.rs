//! Fixture: a suppression without a reason is itself a finding (S001)
//! and does NOT suppress the violation it precedes.

pub fn unaudited(values: &[u32]) -> u32 {
    // hpcqc-lint: allow(D004)
    *values.first().unwrap()
}
