//! The committed example specs under `examples/gen/` must stay loadable,
//! valid, and shaped the way their names promise — they are the CLI's and
//! CI's entry points into the generator.

use hpcqc_gen::{GeneratorSpec, Horizon};

fn load(name: &str) -> GeneratorSpec {
    let path = format!(
        "{}/../../examples/gen/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let spec: GeneratorSpec =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    spec.validate().unwrap_or_else(|e| panic!("{path}: {e}"));
    spec
}

#[test]
fn day_small_is_a_dev_scale_day() {
    let spec = load("day_small");
    assert!(matches!(spec.horizon, Horizon::Span { secs } if (secs - 86_400.0).abs() < 1.0));
    // Small enough to collect comfortably in tests and docs.
    let jobs: Vec<_> = spec.stream(7).collect();
    assert!(
        (200..20_000).contains(&jobs.len()),
        "day_small produced {} jobs",
        jobs.len()
    );
    assert!(jobs.windows(2).all(|w| w[0].submit() <= w[1].submit()));
}

#[test]
fn day_smoke_100k_has_the_ci_contract() {
    let spec = load("day_smoke_100k");
    assert_eq!(spec.horizon, Horizon::Jobs { count: 100_000 });
    // ≥100k jobs inside roughly a day: expected throughput must cover the
    // count within ~30 h.
    let hours = 100_000.0 / spec.expected_jobs_per_hour();
    assert!(hours < 30.0, "100k jobs would take {hours:.1} h");
    // Don't run 100k in a debug test — just prove the stream opens and is
    // ordered over a prefix.
    let prefix: Vec<_> = spec.stream(7).take(2_000).collect();
    assert_eq!(prefix.len(), 2_000);
    assert!(prefix.windows(2).all(|w| w[0].submit() <= w[1].submit()));
}

#[test]
fn month_million_is_month_scale() {
    let spec = load("month_million");
    assert_eq!(spec.horizon, Horizon::Jobs { count: 1_000_000 });
    let days = 1_000_000.0 / spec.expected_jobs_per_hour() / 24.0;
    assert!(
        (20.0..45.0).contains(&days),
        "a million jobs spans {days:.1} days, not a month"
    );
}
