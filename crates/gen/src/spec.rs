//! The declarative generator specification.
//!
//! A [`GeneratorSpec`] is to a synthetic facility what a sweep grid is to
//! an experiment: the whole thing as reviewable data. It names a tenant
//! population (how many users, how large their campaigns run), a weighted
//! job-class mix (what the jobs look like), an arrival intensity (how load
//! breathes over the day and week) and a horizon (how long, or how many
//! jobs). [`GeneratorSpec::stream`] turns it into a deterministic
//! [`JobStream`].

use crate::stream::JobStream;
use hpcqc_workload::pattern::Pattern;
use serde::{Deserialize, Serialize};

/// A weighted job template for generated tenants.
///
/// Unlike [`hpcqc_workload::JobClass`] (which carries its own user pool),
/// a `ClassSpec` leaves the submitting user to the tenant model and keeps
/// every field public so specs stay plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class name; generated job names are `c<campaign>-<name>-<k>`.
    pub name: String,
    /// Relative share of campaigns drawing this class (must be positive).
    pub weight: f64,
    /// The phase-structure recipe.
    pub pattern: Pattern,
    /// Inclusive node-count range sampled per job.
    pub nodes_lo: u32,
    /// Inclusive node-count range sampled per job.
    pub nodes_hi: u32,
    /// Seconds budgeted per quantum phase when estimating walltime.
    pub quantum_estimate_secs: f64,
    /// Requested walltime = estimated runtime × this factor (whole-second
    /// quantized, floored at 600 s).
    pub walltime_margin: f64,
}

impl ClassSpec {
    /// A class with weight 1, 1–4 nodes and conventional walltime margins.
    pub fn new(name: impl Into<String>, pattern: Pattern) -> Self {
        ClassSpec {
            name: name.into(),
            weight: 1.0,
            pattern,
            nodes_lo: 1,
            nodes_hi: 4,
            quantum_estimate_secs: 60.0,
            walltime_margin: 2.0,
        }
    }

    /// Sets the selection weight.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the inclusive node range.
    pub fn nodes_between(mut self, lo: u32, hi: u32) -> Self {
        self.nodes_lo = lo;
        self.nodes_hi = hi;
        self
    }
}

/// The tenant population: who submits, and in what bursts.
///
/// Production traces (e.g. the PSNC multi-user hybrid deployment) show
/// users submitting *campaigns* — related jobs in quick succession —
/// whose sizes follow a heavy-tailed distribution: most campaigns are a
/// couple of jobs, a few are hundreds. The model here is a bounded power
/// law `P(size = s) ∝ s^-alpha` on `[campaign_min, campaign_max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantModel {
    /// Population size. Tenants are addressed by index (`u0`, `u1`, …)
    /// and their attributes derived on demand, so millions of users cost
    /// no memory.
    pub users: u64,
    /// Power-law exponent of the campaign-size distribution (> 1;
    /// 2–3 is typical of batch traces).
    pub campaign_alpha: f64,
    /// Smallest campaign (≥ 1).
    pub campaign_min: u32,
    /// Largest campaign.
    pub campaign_max: u32,
    /// Mean gap between successive submissions within one campaign,
    /// seconds (exponential).
    pub intra_gap_secs: f64,
}

impl TenantModel {
    /// Expected campaign size under the bounded power law (analytic).
    pub fn mean_campaign_size(&self) -> f64 {
        let a = self.campaign_alpha;
        let (lo, hi) = (f64::from(self.campaign_min), f64::from(self.campaign_max));
        if self.campaign_min >= self.campaign_max {
            return lo;
        }
        // E[X] for a continuous bounded Pareto with pdf ∝ x^-a on [lo, hi].
        let norm = if (a - 1.0).abs() < 1e-9 {
            (hi / lo).ln()
        } else {
            (lo.powf(1.0 - a) - hi.powf(1.0 - a)) / (a - 1.0)
        };
        let first = if (a - 2.0).abs() < 1e-9 {
            (hi / lo).ln()
        } else {
            (lo.powf(2.0 - a) - hi.powf(2.0 - a)) / (a - 2.0)
        };
        first / norm
    }
}

/// How campaign arrivals breathe over the day and week.
///
/// The instantaneous campaign-arrival rate is
///
/// ```text
/// rate(t) = base_per_hour
///         × (1 + diurnal_amplitude · cos(2π · (hour_of_day − peak_hour) / 24))
///         × (weekend_factor on Saturday/Sunday, 1 otherwise)
/// ```
///
/// with `t = 0` being Monday 00:00. Arrivals are drawn by thinning a
/// homogeneous Poisson process at the peak rate, the same technique
/// [`hpcqc_workload::ArrivalProcess::Diurnal`] uses for its fixed curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityProfile {
    /// Average weekday campaign-arrival rate, campaigns per hour.
    pub base_per_hour: f64,
    /// Day/night swing in `[0, 1]`: 0 = flat, 1 = nights fully quiet.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) the rate peaks at.
    pub peak_hour: f64,
    /// Multiplier applied on Saturday and Sunday (e.g. 0.4 for the
    /// weekend lull; 1.0 = no weekly structure).
    pub weekend_factor: f64,
}

impl IntensityProfile {
    /// A flat profile at `per_hour` campaigns per hour.
    pub fn flat(per_hour: f64) -> Self {
        IntensityProfile {
            base_per_hour: per_hour,
            diurnal_amplitude: 0.0,
            peak_hour: 12.0,
            weekend_factor: 1.0,
        }
    }

    /// The instantaneous rate at `secs` since Monday 00:00, per hour.
    pub fn rate_per_hour(&self, secs: f64) -> f64 {
        let hour_of_day = (secs / 3_600.0) % 24.0;
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (std::f64::consts::TAU * (hour_of_day - self.peak_hour) / 24.0).cos();
        let day_of_week = ((secs / 86_400.0) as u64) % 7;
        let weekly = if day_of_week >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        self.base_per_hour * diurnal * weekly
    }

    /// The largest rate the profile can reach (thinning envelope).
    pub fn peak_per_hour(&self) -> f64 {
        self.base_per_hour * (1.0 + self.diurnal_amplitude) * self.weekend_factor.max(1.0)
    }
}

/// When the stream ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Horizon {
    /// Exactly this many jobs.
    Jobs {
        /// The job count.
        count: u64,
    },
    /// Every campaign *starting* within the first `secs` simulated seconds
    /// (jobs of a late-starting campaign may submit slightly past the
    /// boundary; the campaign count is what the horizon bounds).
    Span {
        /// The window length, seconds.
        secs: f64,
    },
}

/// A declarative synthetic facility: everything [`JobStream`] needs.
///
/// # Examples
///
/// ```
/// use hpcqc_gen::{ClassSpec, GeneratorSpec, Horizon, IntensityProfile, TenantModel};
/// use hpcqc_workload::Pattern;
/// use hpcqc_qpu::Kernel;
///
/// let spec = GeneratorSpec {
///     name: "two-class-day".into(),
///     horizon: Horizon::Jobs { count: 500 },
///     tenants: TenantModel {
///         users: 10_000,
///         campaign_alpha: 2.2,
///         campaign_min: 1,
///         campaign_max: 64,
///         intra_gap_secs: 45.0,
///     },
///     classes: vec![
///         ClassSpec::new("mpi", Pattern::classical(1_800.0)).weight(3.0).nodes_between(2, 16),
///         ClassSpec::new("vqe", Pattern::vqe(6, 60.0, Kernel::sampling(1_000))),
///     ],
///     arrival: IntensityProfile {
///         base_per_hour: 40.0,
///         diurnal_amplitude: 0.6,
///         peak_hour: 14.0,
///         weekend_factor: 0.5,
///     },
/// };
/// assert!(spec.validate().is_ok());
/// let jobs: Vec<_> = spec.stream(7).collect();
/// assert_eq!(jobs.len(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorSpec {
    /// Human-readable spec name (report labels, file stem).
    pub name: String,
    /// When the stream ends.
    pub horizon: Horizon,
    /// Who submits.
    pub tenants: TenantModel,
    /// What they submit (weighted).
    pub classes: Vec<ClassSpec>,
    /// When they submit.
    pub arrival: IntensityProfile,
}

impl GeneratorSpec {
    /// A small two-class facility useful for tests and quick starts:
    /// 500 jobs from 1 000 users, diurnal load, mostly-classical mix.
    pub fn dev_facility() -> Self {
        use hpcqc_qpu::kernel::Kernel;
        GeneratorSpec {
            name: "dev-facility".into(),
            horizon: Horizon::Jobs { count: 500 },
            tenants: TenantModel {
                users: 1_000,
                campaign_alpha: 2.2,
                campaign_min: 1,
                campaign_max: 32,
                intra_gap_secs: 30.0,
            },
            classes: vec![
                ClassSpec::new("mpi", Pattern::classical(1_200.0))
                    .weight(3.0)
                    .nodes_between(2, 8),
                ClassSpec::new("vqe", Pattern::vqe(5, 45.0, Kernel::sampling(1_000)))
                    .nodes_between(1, 4),
            ],
            arrival: IntensityProfile {
                base_per_hour: 60.0,
                diurnal_amplitude: 0.6,
                peak_hour: 13.0,
                weekend_factor: 0.5,
            },
        }
    }

    /// Checks the spec for values the generator cannot honour.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first defect.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("generator needs at least one job class".into());
        }
        for class in &self.classes {
            if !class.weight.is_finite() || class.weight <= 0.0 {
                return Err(format!("class `{}`: weight must be positive", class.name));
            }
            if class.nodes_lo < 1 || class.nodes_lo > class.nodes_hi {
                return Err(format!(
                    "class `{}`: need 1 ≤ nodes_lo ≤ nodes_hi",
                    class.name
                ));
            }
            if class.name.contains(char::is_whitespace) {
                return Err(format!(
                    "class `{}`: names must be whitespace-free (HQWF field)",
                    class.name
                ));
            }
        }
        if self.tenants.users == 0 {
            return Err("tenant population must be non-empty".into());
        }
        if self.tenants.campaign_min < 1 || self.tenants.campaign_min > self.tenants.campaign_max {
            return Err("need 1 ≤ campaign_min ≤ campaign_max".into());
        }
        if !self.tenants.campaign_alpha.is_finite() || self.tenants.campaign_alpha <= 1.0 {
            return Err("campaign_alpha must exceed 1".into());
        }
        if !self.tenants.intra_gap_secs.is_finite() || self.tenants.intra_gap_secs < 0.0 {
            return Err("intra_gap_secs must be non-negative".into());
        }
        if !self.arrival.base_per_hour.is_finite() || self.arrival.base_per_hour <= 0.0 {
            return Err("base_per_hour must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.arrival.diurnal_amplitude) {
            return Err("diurnal_amplitude must be in [0, 1]".into());
        }
        if !self.arrival.weekend_factor.is_finite() || self.arrival.weekend_factor <= 0.0 {
            return Err("weekend_factor must be positive".into());
        }
        match self.horizon {
            Horizon::Jobs { count: 0 } => Err("horizon needs at least one job".into()),
            Horizon::Span { secs } if !secs.is_finite() || secs <= 0.0 => {
                Err("horizon span must be positive".into())
            }
            _ => Ok(()),
        }
    }

    /// Expected jobs per average weekday hour (analytic): arrival rate ×
    /// mean campaign size. The first sanity check when sizing a machine
    /// for a spec.
    pub fn expected_jobs_per_hour(&self) -> f64 {
        self.arrival.base_per_hour * self.tenants.mean_campaign_size()
    }

    /// Opens the deterministic job stream for this spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`GeneratorSpec::validate`].
    pub fn stream(&self, seed: u64) -> JobStream {
        match self.validate() {
            Ok(()) => JobStream::new(self.clone(), seed),
            Err(e) => panic!("invalid generator spec `{}`: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_facility_validates() {
        assert!(GeneratorSpec::dev_facility().validate().is_ok());
    }

    #[test]
    fn validation_catches_defects() {
        let ok = GeneratorSpec::dev_facility();
        let check = |mutate: fn(&mut GeneratorSpec), needle: &str| {
            let mut spec = ok.clone();
            mutate(&mut spec);
            let err = spec.validate().unwrap_err();
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        };
        check(|s| s.classes.clear(), "at least one job class");
        check(|s| s.classes[0].weight = 0.0, "weight");
        check(|s| s.classes[0].nodes_lo = 9, "nodes_lo");
        check(|s| s.classes[0].name = "a b".into(), "whitespace");
        check(|s| s.tenants.users = 0, "population");
        check(|s| s.tenants.campaign_min = 0, "campaign_min");
        check(|s| s.tenants.campaign_alpha = 1.0, "alpha");
        check(|s| s.arrival.base_per_hour = 0.0, "base_per_hour");
        check(|s| s.arrival.diurnal_amplitude = 1.5, "diurnal_amplitude");
        check(|s| s.arrival.weekend_factor = 0.0, "weekend_factor");
        check(
            |s| s.horizon = Horizon::Jobs { count: 0 },
            "at least one job",
        );
        check(|s| s.horizon = Horizon::Span { secs: 0.0 }, "span");
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = GeneratorSpec::dev_facility();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: GeneratorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn intensity_profile_shapes_rate() {
        let profile = IntensityProfile {
            base_per_hour: 100.0,
            diurnal_amplitude: 0.5,
            peak_hour: 12.0,
            weekend_factor: 0.25,
        };
        // Peak at noon Monday, trough at midnight.
        let noon = profile.rate_per_hour(12.0 * 3_600.0);
        let midnight = profile.rate_per_hour(0.0);
        assert!((noon - 150.0).abs() < 1e-9);
        assert!((midnight - 50.0).abs() < 1e-9);
        // Saturday noon is scaled by the weekend factor.
        let sat_noon = profile.rate_per_hour((5.0 * 24.0 + 12.0) * 3_600.0);
        assert!((sat_noon - 150.0 * 0.25).abs() < 1e-9);
        // The envelope dominates everything.
        for h in 0..(24 * 7) {
            assert!(profile.rate_per_hour(f64::from(h) * 3_600.0) <= profile.peak_per_hour());
        }
    }

    #[test]
    fn mean_campaign_size_analytic() {
        // Degenerate: fixed-size campaigns.
        let fixed = TenantModel {
            users: 10,
            campaign_alpha: 2.5,
            campaign_min: 7,
            campaign_max: 7,
            intra_gap_secs: 1.0,
        };
        assert_eq!(fixed.mean_campaign_size(), 7.0);
        // Heavier tail → larger mean.
        let mk = |alpha: f64| TenantModel {
            users: 10,
            campaign_alpha: alpha,
            campaign_min: 1,
            campaign_max: 1_000,
            intra_gap_secs: 1.0,
        };
        assert!(mk(1.5).mean_campaign_size() > mk(3.0).mean_campaign_size());
        let m = mk(2.2).mean_campaign_size();
        assert!((1.0..=1_000.0).contains(&m), "mean {m}");
    }

    #[test]
    #[should_panic(expected = "invalid generator spec")]
    fn stream_rejects_invalid_spec() {
        let mut spec = GeneratorSpec::dev_facility();
        spec.classes.clear();
        let _ = spec.stream(1);
    }
}
