//! # hpcqc-gen
//!
//! Facility-scale workload **synthesis** for the hpcqc simulator: where
//! `hpcqc-workload` builds job lists you can hold in a `Vec`, this crate
//! describes whole synthetic facilities — multi-tenant user populations
//! submitting power-law-sized campaigns under diurnal and weekly load
//! curves — and *streams* them, one time-ordered [`JobSpec`] at a time,
//! for as many jobs or as many simulated weeks as the spec asks for.
//!
//! The pieces:
//!
//! * [`GeneratorSpec`] — the declarative, serde-able description (tenant
//!   population, job-class mix, arrival intensity, horizon). A synthetic
//!   facility is a reviewable JSON file, like a sweep grid.
//! * [`JobStream`] — the deterministic generator: an
//!   `Iterator<Item = JobSpec>` (and therefore a
//!   `hpcqc_core::JobSource`) whose memory is bounded by the campaigns
//!   in flight, never by the total job count.
//!
//! Determinism contract: the same `(spec, seed)` pair yields the same job
//! sequence whether the stream is consumed lazily, collected, or written
//! to an HQWF trace and parsed back — every emitted time sits on the
//! trace format's millisecond grid (walltimes on whole seconds), so the
//! text round-trip is lossless.
//!
//! ```
//! use hpcqc_gen::GeneratorSpec;
//!
//! let spec = GeneratorSpec::dev_facility();
//! let jobs: Vec<_> = spec.stream(42).take(100).collect();
//! assert_eq!(jobs.len(), 100);
//! assert!(jobs.windows(2).all(|w| w[0].submit() <= w[1].submit()));
//! // Byte-identical on re-generation.
//! let again: Vec<_> = spec.stream(42).take(100).collect();
//! assert_eq!(jobs, again);
//! ```
//!
//! [`JobSpec`]: hpcqc_workload::JobSpec

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod spec;
pub mod stream;

pub use spec::{ClassSpec, GeneratorSpec, Horizon, IntensityProfile, TenantModel};
pub use stream::JobStream;
