//! The streaming generator: campaigns in, time-ordered jobs out.
//!
//! [`JobStream`] realizes a [`GeneratorSpec`] as an
//! `Iterator<Item = JobSpec>`. Campaign arrivals are drawn by thinning a
//! Poisson process at the intensity profile's peak rate; each accepted
//! campaign materializes its (power-law-sized) job list into a small
//! pending heap, and the iterator pops globally time-ordered jobs from
//! that heap. Memory is bounded by the jobs of campaigns still draining —
//! independent of how many jobs the horizon asks for.
//!
//! Every random draw forks off the root seed by `(label, index)`, so the
//! stream is a pure function of `(spec, seed)`: consuming it lazily,
//! collecting it, or round-tripping it through an HQWF trace yields the
//! identical job sequence (all emitted times sit on the trace format's
//! millisecond grid; walltimes on whole seconds).

use crate::spec::{ClassSpec, GeneratorSpec, Horizon, TenantModel};
use hpcqc_simcore::dist::Dist;
use hpcqc_simcore::rng::SimRng;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::job::{JobSpec, Phase};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A job waiting in the merge heap. Ordered by `(submit, seq)`; `seq` is
/// the global creation order, so ties are deterministic.
#[derive(Debug)]
struct Pending {
    submit: SimTime,
    seq: u64,
    spec: JobSpec,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.submit == other.submit && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        self.submit
            .cmp(&other.submit)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The deterministic job stream of a [`GeneratorSpec`] — see the module
/// docs. Construct via [`GeneratorSpec::stream`].
#[derive(Debug)]
pub struct JobStream {
    spec: GeneratorSpec,
    root: SimRng,
    arrival_rng: SimRng,
    campaign_gap: Dist,
    total_weight: f64,
    pending: BinaryHeap<Reverse<Pending>>,
    /// Start of the next accepted campaign (`None` once the horizon's
    /// span is exhausted).
    next_campaign_at: Option<SimTime>,
    campaign_index: u64,
    next_seq: u64,
    emitted: u64,
    peak_pending: usize,
}

impl JobStream {
    pub(crate) fn new(spec: GeneratorSpec, seed: u64) -> Self {
        let root = SimRng::seed_from(seed);
        let arrival_rng = root.fork("campaign-arrivals");
        let campaign_gap = Dist::exponential(3_600.0 / spec.arrival.peak_per_hour());
        let total_weight = spec.classes.iter().map(|c| c.weight).sum();
        let mut stream = JobStream {
            spec,
            root,
            arrival_rng,
            campaign_gap,
            total_weight,
            pending: BinaryHeap::new(),
            next_campaign_at: None,
            campaign_index: 0,
            next_seq: 0,
            emitted: 0,
            peak_pending: 0,
        };
        stream.next_campaign_at = stream.sample_campaign_start(0.0);
        stream
    }

    /// The spec this stream realizes.
    pub fn spec(&self) -> &GeneratorSpec {
        &self.spec
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// High-water mark of the internal pending heap — the generator's own
    /// memory bound (jobs of campaigns still draining, not jobs total).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Samples the next accepted campaign start strictly after `from`
    /// seconds, by thinning at the peak rate. `None` past a span horizon.
    fn sample_campaign_start(&mut self, from: f64) -> Option<SimTime> {
        let peak = self.spec.arrival.peak_per_hour();
        let mut t = from;
        loop {
            t += self.campaign_gap.sample(&mut self.arrival_rng).max(1e-3);
            if let Horizon::Span { secs } = self.spec.horizon {
                if t > secs {
                    return None;
                }
            }
            let accept = self.spec.arrival.rate_per_hour(t) / peak;
            if self.arrival_rng.chance(accept) {
                return Some(SimTime::ZERO + quantize_gap(t));
            }
        }
    }

    /// Materializes one campaign's jobs into the pending heap.
    fn spawn_campaign(&mut self, start: SimTime) {
        let index = self.campaign_index;
        self.campaign_index += 1;
        let mut rng = self.root.fork_indexed("campaign", index);
        let tenant = rng.below(self.spec.tenants.users);
        let size = sample_campaign_size(&self.spec.tenants, &mut rng);
        let class_at = {
            // Weighted class pick, mirroring `WorkloadBuilder`'s discipline.
            let mut pick = rng.f64() * self.total_weight;
            self.spec
                .classes
                .iter()
                .position(|c| {
                    pick -= c.weight;
                    pick <= 0.0
                })
                .unwrap_or(self.spec.classes.len() - 1)
        };
        let gap = Dist::exponential(self.spec.tenants.intra_gap_secs.max(f64::MIN_POSITIVE));
        let mut submit = start;
        for k in 0..size {
            if k > 0 && self.spec.tenants.intra_gap_secs > 0.0 {
                submit += quantize_gap(gap.sample(&mut rng));
            }
            let mut job_rng = rng.fork_indexed("job", u64::from(k));
            let class = &self.spec.classes[class_at];
            let spec = instantiate(class, index, k, tenant, submit, &mut job_rng);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push(Reverse(Pending { submit, seq, spec }));
        }
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }
}

impl Iterator for JobStream {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if let Horizon::Jobs { count } = self.spec.horizon {
            if self.emitted >= count {
                return None;
            }
        }
        // Admit every campaign that starts no later than the earliest
        // pending job — after that the heap head is globally next, since
        // campaign jobs never precede their campaign's start.
        while let Some(at) = self.next_campaign_at {
            if self
                .pending
                .peek()
                .is_some_and(|Reverse(head)| head.submit < at)
            {
                break;
            }
            self.spawn_campaign(at);
            self.next_campaign_at = self.sample_campaign_start(at.as_secs_f64());
        }
        let Reverse(pending) = self.pending.pop()?;
        self.emitted += 1;
        Some(pending.spec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.spec.horizon {
            Horizon::Jobs { count } => {
                let left = (count - self.emitted) as usize;
                (left, Some(left))
            }
            Horizon::Span { .. } => (self.pending.len(), None),
        }
    }
}

/// Inverse-CDF draw from the bounded power law `P(s) ∝ s^-alpha` on
/// `[campaign_min, campaign_max]`, rounded to a whole campaign size.
fn sample_campaign_size(tenants: &TenantModel, rng: &mut SimRng) -> u32 {
    if tenants.campaign_min >= tenants.campaign_max {
        return tenants.campaign_min;
    }
    let alpha = tenants.campaign_alpha;
    let lo = f64::from(tenants.campaign_min);
    let hi = f64::from(tenants.campaign_max);
    let (lo_p, hi_p) = (lo.powf(1.0 - alpha), hi.powf(1.0 - alpha));
    let u = rng.f64();
    let x = (lo_p - u * (lo_p - hi_p)).powf(1.0 / (1.0 - alpha));
    (x.round() as u32).clamp(tenants.campaign_min, tenants.campaign_max)
}

/// One concrete job of a campaign. Everything time-like is quantized to
/// the HQWF grid: submits and classical phases to milliseconds, walltimes
/// to whole seconds — the round-trip half of the determinism contract.
fn instantiate(
    class: &ClassSpec,
    campaign: u64,
    k: u32,
    tenant: u64,
    submit: SimTime,
    rng: &mut SimRng,
) -> JobSpec {
    let span = u64::from(class.nodes_hi - class.nodes_lo + 1);
    let nodes = class.nodes_lo + rng.below(span) as u32;
    let phases: Vec<Phase> = class
        .pattern
        .generate(rng)
        .into_iter()
        .map(|phase| match phase {
            Phase::Classical(d) => Phase::Classical(quantize_phase(d)),
            quantum => quantum,
        })
        .collect();
    let estimated = class.pattern.mean_classical_secs()
        + f64::from(class.pattern.quantum_phases()) * class.quantum_estimate_secs;
    let walltime_secs = (estimated * class.walltime_margin).max(600.0).ceil() as u64;
    JobSpec::builder(format!("c{campaign}-{}-{k}", class.name))
        .user(format!("u{tenant}"))
        .submit(submit)
        .nodes(nodes)
        .walltime(SimDuration::from_secs(walltime_secs))
        .phases(phases)
        .build()
}

/// Milliseconds grid for inter-arrival gaps (zero allowed: same-instant
/// submissions inside a campaign are fine).
fn quantize_gap(secs: f64) -> SimDuration {
    SimDuration::from_millis((secs * 1_000.0).round().max(0.0) as u64)
}

/// Milliseconds grid for classical phase durations, floored at 1 ms so a
/// sampled sliver can never become the zero-duration phase the workload
/// validator rejects.
fn quantize_phase(d: SimDuration) -> SimDuration {
    SimDuration::from_millis(((d.as_secs_f64() * 1_000.0).round() as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_workload::campaign::Workload;
    use hpcqc_workload::trace;

    fn spec() -> GeneratorSpec {
        GeneratorSpec::dev_facility()
    }

    #[test]
    fn stream_is_time_ordered_and_sized() {
        let jobs: Vec<JobSpec> = spec().stream(3).collect();
        assert_eq!(jobs.len(), 500);
        assert!(jobs.windows(2).all(|w| w[0].submit() <= w[1].submit()));
    }

    #[test]
    fn lazy_and_collected_consumption_agree() {
        let collected: Vec<JobSpec> = spec().stream(11).collect();
        // Lazy: pull one at a time, interleaving with peeks at state.
        let mut lazy = spec().stream(11);
        let mut pulled = Vec::new();
        for job in lazy.by_ref() {
            pulled.push(job);
        }
        assert_eq!(pulled, collected);
        assert_eq!(lazy.emitted(), 500);
    }

    #[test]
    fn names_are_globally_unique_and_users_in_population() {
        let jobs: Vec<JobSpec> = spec().stream(5).collect();
        let names: std::collections::HashSet<&str> = jobs.iter().map(JobSpec::name).collect();
        assert_eq!(names.len(), jobs.len());
        for job in &jobs {
            let id: u64 = job.user().strip_prefix('u').unwrap().parse().unwrap();
            assert!(id < spec().tenants.users);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<JobSpec> = spec().stream(1).collect();
        let b: Vec<JobSpec> = spec().stream(2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn hqwf_roundtrip_is_byte_identical() {
        let jobs: Vec<JobSpec> = spec().stream(9).collect();
        let workload = Workload::from_jobs(jobs);
        let text = trace::to_hqwf(&workload);
        let back = trace::from_hqwf(&text).expect("generated trace parses");
        assert_eq!(back, workload, "generated workload must survive HQWF");
        assert_eq!(
            trace::to_hqwf(&back),
            text,
            "re-render must be byte-identical"
        );
    }

    #[test]
    fn span_horizon_bounds_campaign_starts() {
        let mut spec = spec();
        let day = 86_400.0;
        spec.horizon = Horizon::Span { secs: day };
        let jobs: Vec<JobSpec> = spec.stream(4).collect();
        assert!(!jobs.is_empty());
        // Campaign *starts* are inside the day; trailing jobs of the last
        // campaigns may spill past it by at most their intra-campaign span.
        let slack = 3_600.0 * 2.0;
        for job in &jobs {
            assert!(job.submit().as_secs_f64() <= day + slack, "{}", job.name());
        }
        // Roughly: rate × mean size × 24 h, with diurnal/weekend shape
        // folded in. Just sanity-bound it.
        assert!(jobs.len() > 500, "got {}", jobs.len());
    }

    #[test]
    fn pending_heap_stays_small() {
        let mut stream = spec().stream(21);
        let mut count = 0usize;
        for _ in stream.by_ref() {
            count += 1;
        }
        assert_eq!(count, 500);
        assert!(
            stream.peak_pending() < count,
            "heap high-water {} should be well below {count}",
            stream.peak_pending()
        );
    }

    #[test]
    fn class_mix_roughly_respects_weights() {
        let mut spec = spec();
        spec.horizon = Horizon::Jobs { count: 4_000 };
        let jobs: Vec<JobSpec> = spec.stream(7).collect();
        let hybrid = jobs.iter().filter(|j| j.is_hybrid()).count();
        let frac = hybrid as f64 / jobs.len() as f64;
        // vqe weight 1 of 4 total — campaigns (not jobs) are drawn by
        // weight and sizes are heavy-tailed, so allow a wide band.
        assert!((0.05..0.60).contains(&frac), "hybrid fraction {frac}");
    }

    #[test]
    fn campaign_sizes_within_bounds() {
        let tenants = TenantModel {
            users: 10,
            campaign_alpha: 2.0,
            campaign_min: 2,
            campaign_max: 50,
            intra_gap_secs: 1.0,
        };
        let mut rng = SimRng::seed_from(1);
        let mut seen_small = false;
        let mut seen_large = false;
        for _ in 0..2_000 {
            let s = sample_campaign_size(&tenants, &mut rng);
            assert!((2..=50).contains(&s));
            seen_small |= s <= 3;
            seen_large |= s >= 20;
        }
        assert!(seen_small && seen_large, "power law should span the range");
    }
}
