//! Multifactor job priority, SLURM-style.
//!
//! `priority = age_weight · age_hours + size_weight · nodes + qos_boost
//!             − fairshare_weight · decayed_usage(user)`
//!
//! Age rewards waiting jobs (prevents starvation under backfilling); size
//! weight can favour large jobs (positive) or small ones (negative);
//! fairshare penalizes users who recently consumed the machine.

use hpcqc_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Weights of the multifactor priority.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityWeights {
    /// Points per hour of queue age.
    pub age_per_hour: f64,
    /// Points per requested node.
    pub size_per_node: f64,
    /// Points subtracted per decayed node-hour of the user's past usage.
    pub fairshare_per_node_hour: f64,
}

impl PriorityWeights {
    /// Age-dominated defaults: 10 pts/hour of age, 0.1 pts/node, 1 pt of
    /// fairshare penalty per decayed node-hour.
    pub const DEFAULT: PriorityWeights = PriorityWeights {
        age_per_hour: 10.0,
        size_per_node: 0.1,
        fairshare_per_node_hour: 1.0,
    };
}

impl Default for PriorityWeights {
    /// [`PriorityWeights::DEFAULT`].
    fn default() -> Self {
        PriorityWeights::DEFAULT
    }
}

/// Computes job priorities and tracks decayed per-user usage.
#[derive(Debug, Clone)]
pub struct PriorityCalculator {
    weights: PriorityWeights,
    half_life_secs: f64,
    /// Per user: (usage in node-seconds at `last_update`, last update).
    usage: BTreeMap<String, (f64, SimTime)>,
}

impl Default for PriorityCalculator {
    fn default() -> Self {
        PriorityCalculator::new(PriorityWeights::default())
    }
}

impl PriorityCalculator {
    /// Creates a calculator with a one-day fairshare half-life.
    pub fn new(weights: PriorityWeights) -> Self {
        PriorityCalculator {
            weights,
            half_life_secs: 86_400.0,
            usage: BTreeMap::new(),
        }
    }

    /// Overrides the fairshare half-life.
    ///
    /// # Panics
    ///
    /// Panics unless `secs > 0`.
    pub fn with_half_life_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "half-life must be positive");
        self.half_life_secs = secs;
        self
    }

    /// The weights in force.
    pub fn weights(&self) -> PriorityWeights {
        self.weights
    }

    /// The fairshare half-life in force, seconds.
    pub fn half_life_secs(&self) -> f64 {
        self.half_life_secs
    }

    /// Charges `node_seconds` of usage to `user` at time `now`.
    pub fn record_usage(&mut self, user: &str, node_seconds: f64, now: SimTime) {
        let entry = self.usage.entry(user.to_string()).or_insert((0.0, now));
        let decayed = Self::decay(entry.0, entry.1, now, self.half_life_secs);
        *entry = (decayed + node_seconds, now);
    }

    /// The user's decayed usage in node-seconds, as seen at `now`.
    pub fn usage_of(&self, user: &str, now: SimTime) -> f64 {
        self.usage.get(user).map_or(0.0, |(u, at)| {
            Self::decay(*u, *at, now, self.half_life_secs)
        })
    }

    fn decay(value: f64, at: SimTime, now: SimTime, half_life: f64) -> f64 {
        let dt = now.saturating_since(at).as_secs_f64();
        value * 0.5_f64.powf(dt / half_life)
    }

    /// The priority of a job submitted at `submit` by `user` requesting
    /// `nodes`, with an additive QoS boost, evaluated at `now`.
    pub fn priority(
        &self,
        submit: SimTime,
        nodes: u32,
        user: &str,
        qos_boost: f64,
        now: SimTime,
    ) -> f64 {
        let age_hours = now.saturating_since(submit).as_secs_f64() / 3_600.0;
        self.weights.age_per_hour * age_hours
            + self.weights.size_per_node * f64::from(nodes)
            + qos_boost
            - self.weights.fairshare_per_node_hour * self.usage_of(user, now) / 3_600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_increases_priority() {
        let calc = PriorityCalculator::default();
        let early = calc.priority(SimTime::ZERO, 1, "u", 0.0, SimTime::from_secs(7_200));
        let late = calc.priority(
            SimTime::from_secs(3_600),
            1,
            "u",
            0.0,
            SimTime::from_secs(7_200),
        );
        assert!(early > late, "older job must rank higher");
        assert!(
            (early - late - 10.0).abs() < 1e-9,
            "one hour of age = 10 pts"
        );
    }

    #[test]
    fn qos_boost_additive() {
        let calc = PriorityCalculator::default();
        let base = calc.priority(SimTime::ZERO, 1, "u", 0.0, SimTime::ZERO);
        let boosted = calc.priority(SimTime::ZERO, 1, "u", 100.0, SimTime::ZERO);
        assert_eq!(boosted - base, 100.0);
    }

    #[test]
    fn fairshare_penalizes_heavy_users() {
        let mut calc = PriorityCalculator::default();
        calc.record_usage("heavy", 100.0 * 3_600.0, SimTime::ZERO); // 100 node-hours
        let heavy = calc.priority(SimTime::ZERO, 1, "heavy", 0.0, SimTime::ZERO);
        let light = calc.priority(SimTime::ZERO, 1, "light", 0.0, SimTime::ZERO);
        assert!(light > heavy);
        assert!((light - heavy - 100.0).abs() < 1e-9);
    }

    #[test]
    fn usage_decays_with_half_life() {
        let mut calc = PriorityCalculator::default().with_half_life_secs(3_600.0);
        calc.record_usage("u", 1_000.0, SimTime::ZERO);
        let after_one = calc.usage_of("u", SimTime::from_secs(3_600));
        assert!((after_one - 500.0).abs() < 1e-9);
        let after_two = calc.usage_of("u", SimTime::from_secs(7_200));
        assert!((after_two - 250.0).abs() < 1e-9);
    }

    #[test]
    fn usage_accumulates_across_records() {
        let mut calc = PriorityCalculator::default().with_half_life_secs(3_600.0);
        calc.record_usage("u", 1_000.0, SimTime::ZERO);
        calc.record_usage("u", 1_000.0, SimTime::from_secs(3_600));
        // 1000 decayed to 500, plus fresh 1000.
        assert!((calc.usage_of("u", SimTime::from_secs(3_600)) - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_user_has_zero_usage() {
        let calc = PriorityCalculator::default();
        assert_eq!(calc.usage_of("nobody", SimTime::from_secs(5)), 0.0);
    }
}
