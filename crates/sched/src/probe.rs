//! Planning-cycle instrumentation: the [`CycleProbe`] hook.
//!
//! A probe observes each [`BatchScheduler::try_schedule`] cycle from the
//! *outside*: it is told when a cycle begins (and how deep the queue is),
//! when each internal phase — queue ordering, admission decisions, live
//! cluster allocation — starts and stops, and how the cycle ended (jobs
//! started vs held). The scheduler itself never reads a clock; a probe
//! that wants wall-clock timings takes them in its own crate (see
//! `hpcqc-trace`'s `SchedProfiler`), so the deterministic core stays free
//! of wall time and the no-op default ([`NoProbe`]) costs two virtual
//! calls per queued job.
//!
//! [`BatchScheduler::try_schedule`]: crate::scheduler::BatchScheduler::try_schedule

use hpcqc_simcore::time::SimTime;

/// The internal phases of one planning cycle, in execution order.
///
/// `Admit` and `Allocate` interleave per queued job; probes accumulate
/// rather than assume contiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CyclePhase {
    /// Policy `begin_cycle` + queue ordering + availability-profile build.
    Order,
    /// Per-job policy admission decisions (`admit` / `held`).
    Admit,
    /// Live-cluster allocation attempts for admitted jobs.
    Allocate,
}

impl CyclePhase {
    /// Short label used in profiler tables.
    pub fn name(self) -> &'static str {
        match self {
            CyclePhase::Order => "order",
            CyclePhase::Admit => "admit",
            CyclePhase::Allocate => "allocate",
        }
    }
}

/// Observes planning cycles. All hooks have empty defaults, so a probe
/// implements only what it measures.
pub trait CycleProbe: std::fmt::Debug {
    /// A cycle with a non-empty queue begins at sim time `now` with
    /// `queue_depth` jobs pending.
    fn cycle_start(&mut self, now: SimTime, queue_depth: usize) {
        let _ = (now, queue_depth);
    }

    /// An internal phase segment begins.
    fn phase_start(&mut self, phase: CyclePhase) {
        let _ = phase;
    }

    /// The matching phase segment ends.
    fn phase_end(&mut self, phase: CyclePhase) {
        let _ = phase;
    }

    /// The cycle finished: `started` jobs were granted resources,
    /// `held` remain queued.
    fn cycle_end(&mut self, started: usize, held: usize) {
        let _ = (started, held);
    }
}

/// The do-nothing probe behind the unprofiled
/// [`try_schedule`](crate::scheduler::BatchScheduler::try_schedule) path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl CycleProbe for NoProbe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(CyclePhase::Order.name(), "order");
        assert_eq!(CyclePhase::Admit.name(), "admit");
        assert_eq!(CyclePhase::Allocate.name(), "allocate");
    }

    #[test]
    fn no_probe_defaults_are_callable() {
        let mut p = NoProbe;
        p.cycle_start(SimTime::ZERO, 3);
        p.phase_start(CyclePhase::Order);
        p.phase_end(CyclePhase::Order);
        p.cycle_end(1, 2);
    }
}
