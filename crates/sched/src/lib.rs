//! # hpcqc-sched
//!
//! The operational-HPC substrate the paper insists any integration must live
//! within: a SLURM-like batch scheduler with priority queues, heterogeneous
//! (multi-partition) co-allocation, and a pluggable queue-policy API.
//!
//! * [`demand`] — flattened resource vectors and the free-capacity
//!   [`Profile`] timeline backfill planning runs on;
//! * [`priority`] — multifactor priority (age, size, QoS, decayed
//!   fairshare);
//! * [`policy`] — the open [`QueuePolicy`] trait, its [`SchedCtx`]
//!   capability handle, and the serde-able [`PolicySpec`] naming a policy
//!   in scenarios, grids and on the CLI;
//! * [`policies`] — the five built-ins: strict FCFS, EASY backfill
//!   (production default), conservative backfill, priority backfill with
//!   hard aging, and quantum-aware backfill;
//! * [`probe`] — the [`CycleProbe`] hook that lets harness-layer code
//!   (profilers, tracers) watch each planning cycle's phases without the
//!   scheduler ever reading a clock;
//! * [`scheduler`] — the policy-agnostic [`BatchScheduler`] cycle loop.
//!
//! ## Example: Listing 1 through the scheduler
//!
//! ```
//! use hpcqc_cluster::{AllocRequest, ClusterBuilder, GresKind, GroupRequest};
//! use hpcqc_sched::{BatchScheduler, PendingJob, PolicySpec};
//! use hpcqc_simcore::time::{SimDuration, SimTime};
//! use hpcqc_workload::JobId;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .partition("classical", 10)
//!     .partition_with_gres("quantum", 1, GresKind::qpu(), 1)
//!     .build(SimTime::ZERO);
//! let mut sched = BatchScheduler::new(PolicySpec::easy());
//! sched.submit(PendingJob {
//!     id: JobId::new(0),
//!     request: AllocRequest::new()
//!         .group(GroupRequest::nodes("classical", 10))
//!         .group(GroupRequest::gres("quantum", GresKind::qpu(), 1)),
//!     walltime: SimDuration::from_hours(1),
//!     submit: SimTime::ZERO,
//!     user: "alice".into(),
//!     qos_boost: 0.0,
//! }, &cluster)?;
//! let started = sched.try_schedule(&mut cluster, SimTime::ZERO);
//! assert_eq!(started.len(), 1);
//! # Ok::<(), hpcqc_sched::SchedError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod demand;
pub mod policies;
pub mod policy;
pub mod priority;
pub mod probe;
pub mod scheduler;

pub use demand::{Demand, Profile};
pub use policy::{
    sort_by_score, sort_multifactor, Discipline, HoldReason, ParsePolicyError, PolicySpec,
    QueuePolicy, SchedCtx, Verdict, ALL_HOLD_REASONS, POLICY_FORMS,
};
pub use priority::{PriorityCalculator, PriorityWeights};
pub use probe::{CyclePhase, CycleProbe, NoProbe};
pub use scheduler::{BatchScheduler, PendingJob, SchedError, StartedJob};
