//! Resource demand vectors and the free-capacity timeline ([`Profile`])
//! that backfilling plans against.
//!
//! A [`Demand`] is the flattened resource footprint of an allocation
//! request: nodes per partition plus gres units per `(partition, kind)`.
//! A [`Profile`] is a piecewise-constant map `time → free Demand`,
//! constructed from the cluster's current free capacity plus the expected
//! release times of running jobs; reservations carve capacity out of it.

use hpcqc_cluster::alloc::AllocRequest;
use hpcqc_cluster::cluster::Cluster;
use hpcqc_cluster::gres::GresKind;
use hpcqc_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A flattened resource footprint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Demand {
    nodes: BTreeMap<String, u32>,
    gres: BTreeMap<(String, GresKind), u32>,
}

impl Demand {
    /// The empty demand.
    pub fn new() -> Self {
        Demand::default()
    }

    /// Builds the footprint of an allocation request.
    pub fn of_request(request: &AllocRequest) -> Self {
        let mut d = Demand::new();
        for g in request.groups() {
            if g.nodes > 0 {
                *d.nodes.entry(g.partition.clone()).or_default() += g.nodes;
            }
            for (kind, n) in &g.gres {
                if *n > 0 {
                    *d.gres
                        .entry((g.partition.clone(), kind.clone()))
                        .or_default() += n;
                }
            }
        }
        d
    }

    /// The currently free capacity of a cluster, as a demand vector.
    pub fn free_of(cluster: &Cluster) -> Self {
        let mut d = Demand::new();
        for part in cluster.partitions() {
            // The partition name came from this cluster's own iterator, so
            // the lookup cannot miss; degrade to 0 free rather than panic.
            let free = cluster.free_nodes(part.name()).unwrap_or(0);
            if part.node_count() > 0 {
                d.nodes.insert(part.name().to_string(), free);
            }
            for pool in part.gres_pools() {
                d.gres.insert(
                    (part.name().to_string(), pool.kind().clone()),
                    pool.available(),
                );
            }
        }
        d
    }

    /// Node demand on a partition.
    pub fn nodes_in(&self, partition: &str) -> u32 {
        self.nodes.get(partition).copied().unwrap_or(0)
    }

    /// Gres demand on a `(partition, kind)`.
    pub fn gres_in(&self, partition: &str, kind: &GresKind) -> u32 {
        self.gres
            .get(&(partition.to_string(), kind.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// `true` if this demand asks for nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.values().all(|n| *n == 0) && self.gres.values().all(|n| *n == 0)
    }

    /// Component-wise: does `self` (a free vector) cover `other` (a demand)?
    pub fn covers(&self, other: &Demand) -> bool {
        other
            .nodes
            .iter()
            .all(|(k, need)| self.nodes.get(k).copied().unwrap_or(0) >= *need)
            && other
                .gres
                .iter()
                .all(|(k, need)| self.gres.get(k).copied().unwrap_or(0) >= *need)
    }

    /// Component-wise saturating subtraction (`self -= other`).
    pub fn subtract(&mut self, other: &Demand) {
        for (k, v) in &other.nodes {
            let e = self.nodes.entry(k.clone()).or_default();
            *e = e.saturating_sub(*v);
        }
        for (k, v) in &other.gres {
            let e = self.gres.entry(k.clone()).or_default();
            *e = e.saturating_sub(*v);
        }
    }

    /// Component-wise addition (`self += other`).
    pub fn add(&mut self, other: &Demand) {
        for (k, v) in &other.nodes {
            *self.nodes.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gres {
            *self.gres.entry(k.clone()).or_default() += v;
        }
    }
}

/// A piecewise-constant timeline of free capacity.
///
/// Segment `i` spans `[times[i], times[i+1])` with free capacity `free[i]`;
/// the last segment extends to the far horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    times: Vec<SimTime>,
    free: Vec<Demand>,
}

impl Profile {
    /// Builds the availability profile seen at `now`: current free capacity
    /// plus the capacity each running job returns at its expected end.
    ///
    /// `releases` pairs each expected release instant with the demand it
    /// frees; instants in the past are clamped to `now` (an overrunning job
    /// is optimistically assumed to finish imminently — re-planning happens
    /// on every completion event anyway, and real starts always re-validate
    /// against the live cluster).
    pub fn build(now: SimTime, mut current_free: Demand, releases: &[(SimTime, Demand)]) -> Self {
        let mut events: Vec<(SimTime, &Demand)> =
            releases.iter().map(|(t, d)| ((*t).max(now), d)).collect();
        events.sort_by_key(|(t, _)| *t);
        let mut times = vec![now];
        let mut free = vec![current_free.clone()];
        for (t, d) in events {
            current_free.add(d);
            if times.last() == Some(&t) {
                if let Some(slot) = free.last_mut() {
                    *slot = current_free.clone();
                }
            } else {
                times.push(t);
                free.push(current_free.clone());
            }
        }
        Profile { times, free }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.times.len()
    }

    /// The free capacity at instant `t`.
    pub fn free_at(&self, t: SimTime) -> &Demand {
        // Last segment whose start ≤ t; profile starts at `now` so earlier
        // queries clamp to the first segment.
        let idx = match self.times.binary_search(&t) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        &self.free[idx]
    }

    /// `true` if `demand` fits everywhere in `[start, start + duration)`.
    pub fn fits(&self, demand: &Demand, start: SimTime, duration: SimDuration) -> bool {
        let end = start.saturating_add(duration);
        let mut idx = match self.times.binary_search(&start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        while idx < self.times.len() {
            if self.times[idx] >= end {
                break;
            }
            let seg_end = self.times.get(idx + 1).copied().unwrap_or(SimTime::MAX);
            if seg_end > start && !self.free[idx].covers(demand) {
                return false;
            }
            idx += 1;
        }
        true
    }

    /// Earliest instant ≥ `from` at which `demand` fits for `duration`.
    ///
    /// Candidate starts are segment boundaries (capacity only ever changes
    /// there), so the search is exact. Returns [`SimTime::MAX`] if the
    /// demand can never fit (it exceeds total capacity).
    pub fn find_slot(&self, demand: &Demand, duration: SimDuration, from: SimTime) -> SimTime {
        if demand.is_empty() {
            return from;
        }
        if self.fits(demand, from, duration) {
            return from;
        }
        for (i, t) in self.times.iter().enumerate() {
            if *t <= from {
                continue;
            }
            if self.free[i].covers(demand) && self.fits(demand, *t, duration) {
                return *t;
            }
        }
        SimTime::MAX
    }

    /// Carves `demand` out of the profile over `[start, start + duration)`,
    /// splitting segments at the boundaries as needed.
    pub fn reserve(&mut self, demand: &Demand, start: SimTime, duration: SimDuration) {
        let end = start.saturating_add(duration);
        self.split_at(start);
        if end < SimTime::MAX {
            self.split_at(end);
        }
        for i in 0..self.times.len() {
            let seg_start = self.times[i];
            if seg_start >= end {
                break;
            }
            let seg_end = self.times.get(i + 1).copied().unwrap_or(SimTime::MAX);
            if seg_end <= start {
                continue;
            }
            self.free[i].subtract(demand);
        }
    }

    fn split_at(&mut self, t: SimTime) {
        match self.times.binary_search(&t) {
            Ok(_) => {}
            Err(0) => {} // before profile start: nothing to split
            Err(i) => {
                self.times.insert(i, t);
                let prev = self.free[i - 1].clone();
                self.free.insert(i, prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_cluster::alloc::GroupRequest;
    use hpcqc_cluster::cluster::ClusterBuilder;

    fn demand(nodes: u32) -> Demand {
        Demand::of_request(&AllocRequest::new().group(GroupRequest::nodes("classical", nodes)))
    }

    fn free(nodes: u32) -> Demand {
        demand(nodes)
    }

    #[test]
    fn demand_of_listing1() {
        let req = AllocRequest::new()
            .group(GroupRequest::nodes("classical", 10))
            .group(GroupRequest::gres("quantum", GresKind::qpu(), 1));
        let d = Demand::of_request(&req);
        assert_eq!(d.nodes_in("classical"), 10);
        assert_eq!(d.gres_in("quantum", &GresKind::qpu()), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn covers_and_subtract() {
        let mut a = free(10);
        let b = demand(4);
        assert!(a.covers(&b));
        a.subtract(&b);
        assert_eq!(a.nodes_in("classical"), 6);
        assert!(!a.covers(&demand(7)));
        a.add(&b);
        assert_eq!(a.nodes_in("classical"), 10);
    }

    #[test]
    fn free_of_cluster_reflects_state() {
        let mut c = ClusterBuilder::new()
            .partition("classical", 8)
            .partition_with_gres("quantum", 1, GresKind::qpu(), 2)
            .build(SimTime::ZERO);
        let d = Demand::free_of(&c);
        assert_eq!(d.nodes_in("classical"), 8);
        assert_eq!(d.gres_in("quantum", &GresKind::qpu()), 2);
        c.allocate(
            &AllocRequest::new().group(GroupRequest::nodes("classical", 3)),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(Demand::free_of(&c).nodes_in("classical"), 5);
    }

    #[test]
    fn profile_releases_merge() {
        // free 2 now; 3 more at t=10; 5 more at t=20.
        let p = Profile::build(
            SimTime::ZERO,
            free(2),
            &[
                (SimTime::from_secs(10), free(3)),
                (SimTime::from_secs(20), free(5)),
            ],
        );
        assert_eq!(p.segments(), 3);
        assert_eq!(p.free_at(SimTime::from_secs(5)).nodes_in("classical"), 2);
        assert_eq!(p.free_at(SimTime::from_secs(10)).nodes_in("classical"), 5);
        assert_eq!(p.free_at(SimTime::from_secs(25)).nodes_in("classical"), 10);
    }

    #[test]
    fn find_slot_waits_for_release() {
        let p = Profile::build(SimTime::ZERO, free(2), &[(SimTime::from_secs(30), free(4))]);
        // 4 nodes fit only after the release at t=30.
        assert_eq!(
            p.find_slot(&demand(4), SimDuration::from_secs(100), SimTime::ZERO),
            SimTime::from_secs(30)
        );
        // 2 nodes fit immediately.
        assert_eq!(
            p.find_slot(&demand(2), SimDuration::from_secs(100), SimTime::ZERO),
            SimTime::ZERO
        );
        // 7 nodes never fit.
        assert_eq!(
            p.find_slot(&demand(7), SimDuration::from_secs(1), SimTime::ZERO),
            SimTime::MAX
        );
    }

    #[test]
    fn reservation_blocks_slot() {
        let mut p = Profile::build(SimTime::ZERO, free(4), &[]);
        p.reserve(
            &demand(3),
            SimTime::from_secs(50),
            SimDuration::from_secs(100),
        );
        // A 2-node job for 40 s fits before the reservation...
        assert_eq!(
            p.find_slot(&demand(2), SimDuration::from_secs(40), SimTime::ZERO),
            SimTime::ZERO
        );
        // ... but a 2-node job for 60 s would overlap it, so it must wait
        // for the reservation to end at t=150.
        assert_eq!(
            p.find_slot(&demand(2), SimDuration::from_secs(60), SimTime::ZERO),
            SimTime::from_secs(150)
        );
    }

    #[test]
    fn fits_checks_whole_span() {
        let p = Profile::build(SimTime::ZERO, free(4), &[]);
        let mut p2 = p.clone();
        p2.reserve(
            &demand(4),
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
        );
        assert!(p2.fits(&demand(1), SimTime::ZERO, SimDuration::from_secs(10)));
        assert!(!p2.fits(&demand(1), SimTime::ZERO, SimDuration::from_secs(11)));
        assert!(p2.fits(
            &demand(1),
            SimTime::from_secs(20),
            SimDuration::from_secs(1_000)
        ));
    }

    #[test]
    fn past_releases_clamped_to_now() {
        let now = SimTime::from_secs(100);
        let p = Profile::build(now, free(1), &[(SimTime::from_secs(50), free(9))]);
        assert_eq!(p.free_at(now).nodes_in("classical"), 10);
    }

    #[test]
    fn empty_demand_fits_anywhere() {
        let p = Profile::build(SimTime::ZERO, free(0), &[]);
        assert_eq!(
            p.find_slot(
                &Demand::new(),
                SimDuration::from_hours(1),
                SimTime::from_secs(5)
            ),
            SimTime::from_secs(5)
        );
    }
}
