//! EASY backfilling.

use super::{easy_admit, easy_held};
use crate::demand::{Demand, Profile};
use crate::policy::{sort_multifactor, QueuePolicy, SchedCtx, Verdict};
use crate::scheduler::PendingJob;

/// EASY backfilling, the default on most production systems: the first
/// job that cannot start (the head) gets a reservation at its earliest
/// feasible start — the *shadow time* — and later jobs may start now only
/// if they do not delay that reservation.
///
/// # Examples
///
/// ```
/// use hpcqc_cluster::{AllocRequest, ClusterBuilder, GroupRequest};
/// use hpcqc_sched::{BatchScheduler, PendingJob, PolicySpec};
/// use hpcqc_simcore::time::{SimDuration, SimTime};
/// use hpcqc_workload::JobId;
///
/// let mut cluster = ClusterBuilder::new()
///     .partition("classical", 10)
///     .build(SimTime::ZERO);
/// let mut sched = BatchScheduler::new(PolicySpec::easy());
/// let job = |id: u64, nodes: u32, walltime: u64| PendingJob {
///     id: JobId::new(id),
///     request: AllocRequest::new().group(GroupRequest::nodes("classical", nodes)),
///     walltime: SimDuration::from_secs(walltime),
///     submit: SimTime::from_secs(id),
///     user: "doc".into(),
///     qos_boost: 0.0,
/// };
/// sched.submit(job(0, 6, 100), &cluster)?; // starts now
/// sched.submit(job(1, 6, 1_000), &cluster)?; // blocked head, shadow at t=100
/// sched.submit(job(2, 4, 50), &cluster)?; // fits now, ends before the shadow
/// let ids: Vec<u64> = sched
///     .try_schedule(&mut cluster, SimTime::ZERO)
///     .iter()
///     .map(|s| s.job.raw())
///     .collect();
/// assert_eq!(ids, vec![0, 2], "job 2 backfills around the blocked head");
/// # Ok::<(), hpcqc_sched::SchedError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EasyBackfill {
    head_blocked: bool,
}

impl EasyBackfill {
    /// Creates the policy.
    pub fn new() -> Self {
        EasyBackfill::default()
    }
}

impl QueuePolicy for EasyBackfill {
    fn name(&self) -> &str {
        "easy-backfill"
    }

    fn begin_cycle(&mut self, _ctx: &SchedCtx<'_>) {
        self.head_blocked = false;
    }

    fn order(&mut self, queue: &mut [PendingJob], ctx: &SchedCtx<'_>) {
        sort_multifactor(queue, ctx);
    }

    fn admit(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) -> Verdict {
        easy_admit(self.head_blocked, job, demand, profile, ctx)
    }

    fn held(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) {
        easy_held(&mut self.head_blocked, job, demand, profile, ctx);
    }
}
