//! The built-in queue policies.
//!
//! Five [`QueuePolicy`](crate::policy::QueuePolicy) implementations ship
//! with the scheduler:
//!
//! * [`Fcfs`] — strict first-come-first-served;
//! * [`EasyBackfill`] — EASY backfilling (the production default);
//! * [`ConservativeBackfill`] — conservative backfilling;
//! * [`PriorityBackfill`] — EASY mechanics + hard aging (no starvation);
//! * [`QuantumAware`] — EASY mechanics + idle-QPU boosting.
//!
//! Each is a ~40-line module; a sixth policy is an `impl QueuePolicy`
//! away (see the worked example on [`crate::policy`]) and runs through
//! [`BatchScheduler::custom`](crate::BatchScheduler::custom).

use crate::demand::{Demand, Profile};
use crate::policy::{HoldReason, SchedCtx, Verdict};
use crate::scheduler::PendingJob;
use hpcqc_simcore::time::SimTime;

mod conservative;
mod easy;
mod fcfs;
mod priority;
mod quantum;

pub use conservative::ConservativeBackfill;
pub use easy::EasyBackfill;
pub use fcfs::Fcfs;
pub use priority::PriorityBackfill;
pub use quantum::QuantumAware;

/// Shared EASY-style admission: before the head blocks, anything the
/// live cluster can place starts; afterwards a job may only backfill —
/// start now without delaying the head's reservation already carved into
/// the profile.
pub(crate) fn easy_admit(
    head_blocked: bool,
    job: &PendingJob,
    demand: &Demand,
    profile: &mut Profile,
    ctx: &SchedCtx<'_>,
) -> Verdict {
    let can_start = if head_blocked {
        profile.find_slot(demand, job.walltime, ctx.now()) == ctx.now()
            && ctx.can_allocate(&job.request)
    } else {
        ctx.can_allocate(&job.request)
    };
    if can_start {
        Verdict::Start
    } else {
        // Name the binding cause: a live resource shortage when there is
        // one; otherwise the machine would fit the job right now and only
        // the head's shadow reservation stands in the way.
        Verdict::Hold(match ctx.hold_reason(&job.request) {
            HoldReason::PolicyHold if head_blocked => HoldReason::HeadShadow,
            reason => reason,
        })
    }
}

/// Shared EASY-style hold handling: the first held job becomes the head;
/// its earliest feasible slot (the "shadow time") is reserved so nothing
/// backfilled later in the cycle can delay it.
pub(crate) fn easy_held(
    head_blocked: &mut bool,
    job: &PendingJob,
    demand: &Demand,
    profile: &mut Profile,
    ctx: &SchedCtx<'_>,
) {
    if !*head_blocked {
        *head_blocked = true;
        let shadow = profile.find_slot(demand, job.walltime, ctx.now());
        if shadow != SimTime::MAX {
            profile.reserve(demand, shadow, job.walltime);
        }
    }
}
