//! Conservative backfilling.

use crate::demand::{Demand, Profile};
use crate::policy::{sort_multifactor, HoldReason, QueuePolicy, SchedCtx, Verdict};
use crate::scheduler::PendingJob;

/// Conservative backfilling: *every* job that cannot start now reserves
/// its earliest feasible slot, so a later job may jump ahead only if it
/// delays nobody. Stronger guarantees than EASY, at the cost of a profile
/// that grows with queue depth (see `crates/bench/benches/sched.rs`).
#[derive(Debug, Clone, Default)]
pub struct ConservativeBackfill;

impl ConservativeBackfill {
    /// Creates the policy.
    pub fn new() -> Self {
        ConservativeBackfill
    }
}

impl QueuePolicy for ConservativeBackfill {
    fn name(&self) -> &str {
        "conservative-backfill"
    }

    fn order(&mut self, queue: &mut [PendingJob], ctx: &SchedCtx<'_>) {
        sort_multifactor(queue, ctx);
    }

    fn admit(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) -> Verdict {
        let slot = profile.find_slot(demand, job.walltime, ctx.now());
        if slot > ctx.now() {
            // Reserve its future slot so later jobs cannot delay it.
            profile.reserve(demand, slot, job.walltime);
            // Fits the live machine but not the reservation timeline →
            // an earlier job's reservation is what the job waits on.
            Verdict::Hold(match ctx.hold_reason(&job.request) {
                HoldReason::PolicyHold => HoldReason::HeadShadow,
                reason => reason,
            })
        } else if ctx.can_allocate(&job.request) {
            Verdict::Start
        } else {
            Verdict::Hold(ctx.hold_reason(&job.request))
        }
    }
}
