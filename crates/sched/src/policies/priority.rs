//! Priority-ordered backfilling with hard aging.

use super::{easy_admit, easy_held};
use crate::demand::{Demand, Profile};
use crate::policy::{sort_by_score, QueuePolicy, SchedCtx, Verdict};
use crate::scheduler::PendingJob;

/// EASY mechanics driven purely by the multifactor priority, plus *hard
/// aging*: a job queued longer than `escalate_after_hours` escalates past
/// every priority consideration to the front of the queue (oldest
/// escalated job first). Combined with the EASY head reservation this
/// makes starvation impossible — whatever QoS boosts keep arriving, an
/// aged job becomes the head, gets its shadow reservation, and starts no
/// later than the reservation allows.
///
/// Rocco et al. ("Dynamic Solutions for Hybrid Quantum-HPC Resource
/// Allocation") argue such priority/aging disciplines move the hybrid
/// crossover; this policy makes that claim testable.
///
/// # Examples
///
/// ```
/// use hpcqc_cluster::{AllocRequest, ClusterBuilder, GroupRequest};
/// use hpcqc_sched::{BatchScheduler, PendingJob, PolicySpec};
/// use hpcqc_simcore::time::{SimDuration, SimTime};
/// use hpcqc_workload::JobId;
///
/// let mut cluster = ClusterBuilder::new()
///     .partition("classical", 4)
///     .build(SimTime::ZERO);
/// // Escalate after one hour in queue.
/// let mut sched = BatchScheduler::new(PolicySpec::priority_backfill(1.0));
/// let job = |id: u64, submit: u64, qos: f64| PendingJob {
///     id: JobId::new(id),
///     request: AllocRequest::new().group(GroupRequest::nodes("classical", 4)),
///     walltime: SimDuration::from_secs(600),
///     submit: SimTime::from_secs(submit),
///     user: "doc".into(),
///     qos_boost: qos,
/// };
/// sched.submit(job(0, 0, 0.0), &cluster)?; // old, no boost
/// sched.submit(job(1, 3_000, 1_000.0), &cluster)?; // newer, huge boost
/// // At t=3700 job 0 is >1h old: it escalates past the boosted job.
/// let started = sched.try_schedule(&mut cluster, SimTime::from_secs(3_700));
/// assert_eq!(started[0].job, JobId::new(0), "aged job jumps the queue");
/// # Ok::<(), hpcqc_sched::SchedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PriorityBackfill {
    escalate_after_hours: f64,
    head_blocked: bool,
}

impl PriorityBackfill {
    /// Creates the policy with the given aging threshold (hours).
    pub fn new(escalate_after_hours: f64) -> Self {
        PriorityBackfill {
            escalate_after_hours,
            head_blocked: false,
        }
    }

    /// The aging threshold, hours.
    pub fn escalate_after_hours(&self) -> f64 {
        self.escalate_after_hours
    }
}

impl QueuePolicy for PriorityBackfill {
    fn name(&self) -> &str {
        "priority-backfill"
    }

    fn begin_cycle(&mut self, _ctx: &SchedCtx<'_>) {
        self.head_blocked = false;
    }

    fn order(&mut self, queue: &mut [PendingJob], ctx: &SchedCtx<'_>) {
        // Escalated jobs score +∞, sorting above every finite priority;
        // ties among the escalated fall to `sort_by_score`'s submit-time
        // tiebreak — i.e. oldest escalated job first.
        let threshold = self.escalate_after_hours;
        sort_by_score(queue, |job| {
            let age_hours = ctx.now().saturating_since(job.submit).as_secs_f64() / 3_600.0;
            if age_hours >= threshold {
                f64::INFINITY
            } else {
                ctx.priority_of(job)
            }
        });
    }

    fn admit(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) -> Verdict {
        easy_admit(self.head_blocked, job, demand, profile, ctx)
    }

    fn held(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) {
        easy_held(&mut self.head_blocked, job, demand, profile, ctx);
    }
}
