//! Strict first-come-first-served.

use crate::demand::{Demand, Profile};
use crate::policy::{sort_multifactor, QueuePolicy, SchedCtx, Verdict};
use crate::scheduler::PendingJob;

/// Strict FCFS: the queue (in priority order) starts from the front until
/// the first job that does not fit; everything behind it waits, however
/// small. The paper's worst case for the workflow strategy — every
/// inter-step queue pass pays the full head-of-line wait.
#[derive(Debug, Clone, Default)]
pub struct Fcfs {
    blocked: bool,
}

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl QueuePolicy for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn begin_cycle(&mut self, _ctx: &SchedCtx<'_>) {
        self.blocked = false;
    }

    fn order(&mut self, queue: &mut [PendingJob], ctx: &SchedCtx<'_>) {
        sort_multifactor(queue, ctx);
    }

    fn admit(
        &mut self,
        job: &PendingJob,
        _demand: &Demand,
        _profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) -> Verdict {
        if !self.blocked && ctx.can_allocate(&job.request) {
            Verdict::Start
        } else {
            // `hold_reason` reads `policy-hold` exactly when the machine
            // would fit the job — i.e. pure head-of-line blocking.
            Verdict::Hold(ctx.hold_reason(&job.request))
        }
    }

    fn held(
        &mut self,
        _job: &PendingJob,
        _demand: &Demand,
        _profile: &mut Profile,
        _ctx: &SchedCtx<'_>,
    ) {
        self.blocked = true;
    }
}
