//! Quantum-aware backfilling: minimize idle-QPU time.

use super::{easy_admit, easy_held};
use crate::demand::{Demand, Profile};
use crate::policy::{sort_by_score, QueuePolicy, SchedCtx, Verdict};
use crate::scheduler::PendingJob;
use hpcqc_cluster::gres::GresKind;

/// EASY mechanics plus an idle-QPU boost, after SCIM MILQ (Seitz et al.):
/// whenever at least one QPU gres token sits free, every queued job that
/// *requests* QPU gres gains `idle_boost` priority points. Quantum work
/// jumps ahead of the classical backlog exactly while the expensive
/// device idles — and loses the boost the moment the QPUs are busy, so
/// classical jobs are not starved (the multifactor age term still
/// applies; pair with [`super::PriorityBackfill`]-style aging via
/// [`crate::PolicySpec::with_weights`] for hard guarantees).
///
/// # Examples
///
/// ```
/// use hpcqc_cluster::{AllocRequest, ClusterBuilder, GresKind, GroupRequest};
/// use hpcqc_sched::{BatchScheduler, PendingJob, PolicySpec};
/// use hpcqc_simcore::time::{SimDuration, SimTime};
/// use hpcqc_workload::JobId;
///
/// let mut cluster = ClusterBuilder::new()
///     .partition("classical", 4)
///     .partition_with_gres("quantum", 0, GresKind::qpu(), 1)
///     .build(SimTime::ZERO);
/// let mut sched = BatchScheduler::new(PolicySpec::quantum_aware(1_000.0));
/// // A classical job submitted well before a hybrid one: by age it wins…
/// sched.submit(
///     PendingJob {
///         id: JobId::new(0),
///         request: AllocRequest::new().group(GroupRequest::nodes("classical", 4)),
///         walltime: SimDuration::from_secs(600),
///         submit: SimTime::ZERO,
///         user: "doc".into(),
///         qos_boost: 0.0,
///     },
///     &cluster,
/// )?;
/// sched.submit(
///     PendingJob {
///         id: JobId::new(1),
///         request: AllocRequest::new()
///             .group(GroupRequest::nodes("classical", 4))
///             .group(GroupRequest::gres("quantum", GresKind::qpu(), 1)),
///         walltime: SimDuration::from_secs(600),
///         submit: SimTime::from_secs(3_600),
///         user: "doc".into(),
///         qos_boost: 0.0,
///     },
///     &cluster,
/// )?;
/// // …but the QPU is idle, so the hybrid job is boosted to the front.
/// let started = sched.try_schedule(&mut cluster, SimTime::from_secs(3_600));
/// assert_eq!(started[0].job, JobId::new(1), "idle QPU pulls the hybrid job forward");
/// # Ok::<(), hpcqc_sched::SchedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantumAware {
    idle_boost: f64,
    head_blocked: bool,
}

impl QuantumAware {
    /// Creates the policy with the given idle-QPU priority boost.
    pub fn new(idle_boost: f64) -> Self {
        QuantumAware {
            idle_boost,
            head_blocked: false,
        }
    }

    /// The idle-QPU priority boost, points.
    pub fn idle_boost(&self) -> f64 {
        self.idle_boost
    }
}

impl QueuePolicy for QuantumAware {
    fn name(&self) -> &str {
        "quantum-aware"
    }

    fn begin_cycle(&mut self, _ctx: &SchedCtx<'_>) {
        self.head_blocked = false;
    }

    fn order(&mut self, queue: &mut [PendingJob], ctx: &SchedCtx<'_>) {
        let qpu = GresKind::qpu();
        let qpu_idle = ctx.free_gres(&qpu) > 0;
        sort_by_score(queue, |job| {
            if qpu_idle && job.request.total_gres(&qpu) > 0 {
                ctx.priority_of(job) + self.idle_boost
            } else {
                ctx.priority_of(job)
            }
        });
    }

    fn admit(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) -> Verdict {
        easy_admit(self.head_blocked, job, demand, profile, ctx)
    }

    fn held(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) {
        easy_held(&mut self.head_blocked, job, demand, profile, ctx);
    }
}
