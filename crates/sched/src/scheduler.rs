//! The batch scheduler: queue, policies, and start decisions.
//!
//! [`BatchScheduler`] owns the pending queue and decides, on every
//! scheduling cycle, which jobs start now. Three policies are provided:
//!
//! * [`Policy::Fcfs`] — strict first-come-first-served: the queue head
//!   blocks everything behind it;
//! * [`Policy::EasyBackfill`] — the head gets a reservation at its earliest
//!   feasible start ("shadow time"); later jobs may start now if they do
//!   not delay that reservation. The default on most production systems;
//! * [`Policy::ConservativeBackfill`] — every queued job gets a
//!   reservation; a job may jump ahead only without delaying any of them.
//!
//! The distinction matters to the paper's Fig. 2: the *workflow* strategy
//! pays one queue wait per step, and that wait depends directly on the
//! backfill policy in force.

use crate::demand::{Demand, Profile};
use crate::priority::PriorityCalculator;
use hpcqc_cluster::alloc::AllocRequest;
use hpcqc_cluster::cluster::Cluster;
use hpcqc_cluster::ids::AllocationId;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::job::JobId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Strict first-come-first-served.
    Fcfs,
    /// EASY backfilling (reservation for the queue head only).
    EasyBackfill,
    /// Conservative backfilling (reservation for every queued job).
    ConservativeBackfill,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Policy::Fcfs => "fcfs",
            Policy::EasyBackfill => "easy-backfill",
            Policy::ConservativeBackfill => "conservative-backfill",
        };
        f.write_str(s)
    }
}

/// Why the scheduler rejected a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The request exceeds the machine's total capacity and can never run.
    ImpossibleRequest {
        /// The offending job.
        job: JobId,
        /// Human-readable shortfall description.
        reason: String,
    },
    /// Walltime must be positive.
    ZeroWalltime {
        /// The offending job.
        job: JobId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ImpossibleRequest { job, reason } => {
                write!(f, "{job} can never be satisfied: {reason}")
            }
            SchedError::ZeroWalltime { job } => write!(f, "{job} has zero walltime"),
        }
    }
}

impl Error for SchedError {}

/// A job waiting in the scheduler queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// The job's id.
    pub id: JobId,
    /// The resources it needs (heterogeneous-group shape).
    pub request: AllocRequest,
    /// Requested walltime — the scheduler's planning horizon for the job.
    pub walltime: SimDuration,
    /// When it entered the queue.
    pub submit: SimTime,
    /// Accounting user.
    pub user: String,
    /// Additive QoS priority boost.
    pub qos_boost: f64,
}

/// A start decision from one scheduling cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedJob {
    /// The job that started.
    pub job: JobId,
    /// The allocation backing it.
    pub alloc: AllocationId,
}

#[derive(Debug, Clone)]
struct Running {
    job: JobId,
    user: String,
    demand: Demand,
    expected_end: SimTime,
    node_count: u32,
    started: SimTime,
}

/// The batch scheduler.
///
/// Drive it with [`submit`](BatchScheduler::submit) /
/// [`finished`](BatchScheduler::finished) /
/// [`try_schedule`](BatchScheduler::try_schedule); the caller owns the
/// simulation clock and the [`Cluster`].
#[derive(Debug)]
pub struct BatchScheduler {
    policy: Policy,
    priority: PriorityCalculator,
    pending: Vec<PendingJob>,
    running: HashMap<AllocationId, Running>,
    total_started: u64,
    total_finished: u64,
}

impl BatchScheduler {
    /// Creates a scheduler with the given policy and default priorities.
    pub fn new(policy: Policy) -> Self {
        BatchScheduler {
            policy,
            priority: PriorityCalculator::default(),
            pending: Vec::new(),
            running: HashMap::new(),
            total_started: 0,
            total_finished: 0,
        }
    }

    /// Replaces the priority calculator.
    pub fn with_priority(mut self, priority: PriorityCalculator) -> Self {
        self.priority = priority;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Jobs currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Total jobs ever started.
    pub fn total_started(&self) -> u64 {
        self.total_started
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// [`SchedError::ImpossibleRequest`] if the request exceeds the
    /// machine's total capacity (it would block the queue forever);
    /// [`SchedError::ZeroWalltime`] for a zero walltime.
    pub fn submit(&mut self, job: PendingJob, cluster: &Cluster) -> Result<(), SchedError> {
        if job.walltime.is_zero() {
            return Err(SchedError::ZeroWalltime { job: job.id });
        }
        let mut capacity = Demand::new();
        for part in cluster.partitions() {
            let whole = AllocRequest::new().group(hpcqc_cluster::alloc::GroupRequest {
                partition: part.name().to_string(),
                nodes: part.node_count() as u32,
                gres: part
                    .gres_pools()
                    .iter()
                    .map(|p| (p.kind().clone(), p.capacity()))
                    .collect(),
            });
            capacity.add(&Demand::of_request(&whole));
        }
        let need = Demand::of_request(&job.request);
        if !capacity.covers(&need) {
            return Err(SchedError::ImpossibleRequest {
                job: job.id,
                reason: "demand exceeds total machine capacity".to_string(),
            });
        }
        self.pending.push(job);
        Ok(())
    }

    /// Removes a queued job. Returns `true` if it was still pending.
    pub fn cancel(&mut self, job: JobId) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.id != job);
        self.pending.len() != before
    }

    /// Notifies the scheduler that the job backing `alloc` finished at
    /// `now` (the caller releases the cluster allocation itself). Charges
    /// fairshare usage. Returns the finished job's id if known.
    pub fn finished(&mut self, alloc: AllocationId, now: SimTime) -> Option<JobId> {
        let running = self.running.remove(&alloc)?;
        let node_seconds =
            f64::from(running.node_count) * now.saturating_since(running.started).as_secs_f64();
        self.priority.record_usage(&running.user, node_seconds, now);
        self.total_finished += 1;
        Some(running.job)
    }

    /// Runs one scheduling cycle at `now`: starts every job the policy
    /// admits, allocating from `cluster`. Returns the started jobs in start
    /// order. Deterministic for identical inputs.
    pub fn try_schedule(&mut self, cluster: &mut Cluster, now: SimTime) -> Vec<StartedJob> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        // Priority order; ties broken by submit time then id for determinism.
        self.pending.sort_by(|a, b| {
            let pa = self
                .priority
                .priority(a.submit, Self::nodes_of(a), &a.user, a.qos_boost, now);
            let pb = self
                .priority
                .priority(b.submit, Self::nodes_of(b), &b.user, b.qos_boost, now);
            pb.total_cmp(&pa)
                .then(a.submit.cmp(&b.submit))
                .then(a.id.cmp(&b.id))
        });

        let releases: Vec<(SimTime, Demand)> = self
            .running
            .values()
            .map(|r| (r.expected_end, r.demand.clone()))
            .collect();
        let mut profile = Profile::build(now, Demand::free_of(cluster), &releases);

        let mut started = Vec::new();
        let mut still_pending: Vec<PendingJob> = Vec::new();
        let mut head_blocked = false;

        for job in std::mem::take(&mut self.pending) {
            let demand = Demand::of_request(&job.request);
            let can_start_now = match self.policy {
                Policy::Fcfs | Policy::EasyBackfill => {
                    if head_blocked && self.policy == Policy::Fcfs {
                        false
                    } else if head_blocked {
                        // EASY backfill: must fit now without delaying the
                        // head's reservation already carved into the profile.
                        profile.find_slot(&demand, job.walltime, now) == now
                            && cluster.can_allocate(&job.request).is_ok()
                    } else {
                        cluster.can_allocate(&job.request).is_ok()
                    }
                }
                Policy::ConservativeBackfill => {
                    let slot = profile.find_slot(&demand, job.walltime, now);
                    if slot > now {
                        // Reserve its future slot so later jobs cannot delay it.
                        profile.reserve(&demand, slot, job.walltime);
                        false
                    } else {
                        cluster.can_allocate(&job.request).is_ok()
                    }
                }
            };

            if can_start_now {
                match cluster.allocate(&job.request, now) {
                    Ok(alloc) => {
                        profile.reserve(&demand, now, job.walltime);
                        self.running.insert(
                            alloc,
                            Running {
                                job: job.id,
                                user: job.user.clone(),
                                demand,
                                expected_end: now + job.walltime,
                                node_count: Self::nodes_of(&job),
                                started: now,
                            },
                        );
                        self.total_started += 1;
                        started.push(StartedJob { job: job.id, alloc });
                        continue;
                    }
                    Err(_) => {
                        // Profile said yes but the live cluster disagrees
                        // (e.g. failed nodes): treat as blocked.
                    }
                }
            }

            // Job stays pending.
            if !head_blocked {
                head_blocked = true;
                if self.policy == Policy::EasyBackfill {
                    // Protect the head: reserve its earliest feasible slot.
                    let shadow = profile.find_slot(&demand, job.walltime, now);
                    if shadow != SimTime::MAX {
                        profile.reserve(&demand, shadow, job.walltime);
                    }
                }
            }
            still_pending.push(job);
        }
        self.pending = still_pending;
        started
    }

    fn nodes_of(job: &PendingJob) -> u32 {
        job.request.total_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_cluster::alloc::GroupRequest;
    use hpcqc_cluster::cluster::ClusterBuilder;
    use hpcqc_cluster::gres::GresKind;

    fn cluster(nodes: u32) -> Cluster {
        ClusterBuilder::new()
            .partition("classical", nodes)
            .partition_with_gres("quantum", 1, GresKind::qpu(), 1)
            .build(SimTime::ZERO)
    }

    fn job(id: u64, nodes: u32, walltime_s: u64, submit_s: u64) -> PendingJob {
        PendingJob {
            id: JobId::new(id),
            request: AllocRequest::new().group(GroupRequest::nodes("classical", nodes)),
            walltime: SimDuration::from_secs(walltime_s),
            submit: SimTime::from_secs(submit_s),
            user: "u".into(),
            qos_boost: 0.0,
        }
    }

    #[test]
    fn fcfs_starts_in_order_and_blocks() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::Fcfs);
        s.submit(job(0, 6, 100, 0), &c).unwrap();
        s.submit(job(1, 6, 100, 1), &c).unwrap(); // cannot co-run with job 0
        s.submit(job(2, 2, 100, 2), &c).unwrap(); // would fit, but FCFS blocks
        let started = s.try_schedule(&mut c, SimTime::from_secs(10));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(0));
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn easy_backfills_around_blocked_head() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::EasyBackfill);
        s.submit(job(0, 6, 100, 0), &c).unwrap(); // runs now, ends t=110
        s.submit(job(1, 6, 1_000, 1), &c).unwrap(); // blocked head, shadow t=110
        s.submit(job(2, 4, 50, 2), &c).unwrap(); // fits now, ends t=60 < 110 → backfills
        let started = s.try_schedule(&mut c, SimTime::from_secs(10));
        let ids: Vec<u64> = started.iter().map(|st| st.job.raw()).collect();
        assert_eq!(ids, vec![0, 2], "job2 must backfill around blocked job1");
    }

    #[test]
    fn easy_backfill_must_not_delay_head() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::EasyBackfill);
        s.submit(job(0, 6, 100, 0), &c).unwrap(); // ends t=100
        s.submit(job(1, 6, 1_000, 1), &c).unwrap(); // head: shadow at t=100 needs 6
                                                    // 4-node job for 1000 s: fits now (4 ≤ 4 free), and at shadow t=100
                                                    // free is 10−6(head)=4 ≥ 4 → fine, backfills.
        s.submit(job(2, 4, 1_000, 2), &c).unwrap();
        // 5-node job for 1000 s: fits now? only 4 free → no.
        s.submit(job(3, 5, 1_000, 3), &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        let ids: Vec<u64> = started.iter().map(|st| st.job.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
        // Now make a job that fits now but would delay the head:
        // after 0 and 2 run, 0 free; nothing else can start.
        assert_eq!(s.try_schedule(&mut c, SimTime::from_secs(1)).len(), 0);
    }

    #[test]
    fn conservative_respects_all_reservations() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::ConservativeBackfill);
        s.submit(job(0, 10, 100, 0), &c).unwrap(); // fills machine until t=100
        s.submit(job(1, 10, 100, 1), &c).unwrap(); // reserved [100, 200)
        s.submit(job(2, 10, 100, 2), &c).unwrap(); // reserved [200, 300)
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(started.len(), 1);
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn finished_frees_and_next_cycle_starts() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::Fcfs);
        s.submit(job(0, 10, 100, 0), &c).unwrap();
        s.submit(job(1, 10, 100, 1), &c).unwrap();
        let first = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(first.len(), 1);
        let end = SimTime::from_secs(100);
        c.release(first[0].alloc, end).unwrap();
        assert_eq!(s.finished(first[0].alloc, end), Some(JobId::new(0)));
        let second = s.try_schedule(&mut c, end);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].job, JobId::new(1));
        assert_eq!(s.total_started(), 2);
    }

    #[test]
    fn impossible_request_rejected_at_submit() {
        let c = cluster(10);
        let mut s = BatchScheduler::new(Policy::EasyBackfill);
        let err = s.submit(job(0, 11, 100, 0), &c).unwrap_err();
        assert!(matches!(err, SchedError::ImpossibleRequest { .. }));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn zero_walltime_rejected() {
        let c = cluster(4);
        let mut s = BatchScheduler::new(Policy::Fcfs);
        let err = s.submit(job(0, 1, 0, 0), &c).unwrap_err();
        assert!(matches!(err, SchedError::ZeroWalltime { .. }));
    }

    #[test]
    fn cancel_removes_pending() {
        let c = cluster(4);
        let mut s = BatchScheduler::new(Policy::Fcfs);
        s.submit(job(0, 1, 10, 0), &c).unwrap();
        assert!(s.cancel(JobId::new(0)));
        assert!(!s.cancel(JobId::new(0)));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn hetjob_request_schedules_atomically() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::EasyBackfill);
        let listing1 = PendingJob {
            id: JobId::new(0),
            request: AllocRequest::new()
                .group(GroupRequest::nodes("classical", 10))
                .group(GroupRequest::gres("quantum", GresKind::qpu(), 1)),
            walltime: SimDuration::from_hours(1),
            submit: SimTime::ZERO,
            user: "u".into(),
            qos_boost: 0.0,
        };
        s.submit(listing1, &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(started.len(), 1);
        assert_eq!(c.free_nodes("classical").unwrap(), 0);
        assert_eq!(c.free_gres("quantum", &GresKind::qpu()).unwrap(), 0);
    }

    #[test]
    fn priority_order_respected() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(Policy::Fcfs);
        // Same submit, but job 1 has a QoS boost → runs first.
        let mut a = job(0, 10, 100, 0);
        a.qos_boost = 0.0;
        let mut b = job(1, 10, 100, 0);
        b.qos_boost = 50.0;
        s.submit(a, &c).unwrap();
        s.submit(b, &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(started[0].job, JobId::new(1));
    }

    #[test]
    fn deterministic_cycles() {
        let run = || {
            let mut c = cluster(16);
            let mut s = BatchScheduler::new(Policy::EasyBackfill);
            for i in 0..10 {
                s.submit(job(i, (i % 5 + 1) as u32 * 2, 100 + i * 7, i), &c)
                    .unwrap();
            }
            let mut order = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..20 {
                for st in s.try_schedule(&mut c, now) {
                    order.push(st.job.raw());
                    // Finish immediately after 50 s to keep the test short.
                    let end = now + SimDuration::from_secs(50);
                    c.release(st.alloc, end).unwrap();
                    s.finished(st.alloc, end);
                }
                now += SimDuration::from_secs(50);
            }
            order
        };
        assert_eq!(run(), run());
    }
}
