//! The batch scheduler: queue, start decisions, and the policy-agnostic
//! scheduling cycle.
//!
//! [`BatchScheduler`] owns the pending queue and decides, on every
//! scheduling cycle, which jobs start now — but *how* is delegated to a
//! pluggable [`QueuePolicy`] (see [`crate::policy`] for the trait and
//! [`crate::policies`] for the five built-ins: strict FCFS, EASY
//! backfill, conservative backfill, priority backfill with aging, and
//! quantum-aware backfill).
//!
//! The distinction matters to the paper's Fig. 2: the *workflow* strategy
//! pays one queue wait per step, and that wait depends directly on the
//! queue policy in force.

use crate::demand::{Demand, Profile};
use crate::policy::{HoldReason, PolicySpec, QueuePolicy, SchedCtx, Verdict};
use crate::priority::PriorityCalculator;
use crate::probe::{CyclePhase, CycleProbe, NoProbe};
use hpcqc_cluster::alloc::AllocRequest;
use hpcqc_cluster::cluster::Cluster;
use hpcqc_cluster::error::ClusterError;
use hpcqc_cluster::ids::AllocationId;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::job::JobId;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Why the scheduler rejected a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The request exceeds the machine's total capacity and can never run.
    ImpossibleRequest {
        /// The offending job.
        job: JobId,
        /// Human-readable shortfall description.
        reason: String,
    },
    /// Walltime must be positive.
    ZeroWalltime {
        /// The offending job.
        job: JobId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ImpossibleRequest { job, reason } => {
                write!(f, "{job} can never be satisfied: {reason}")
            }
            SchedError::ZeroWalltime { job } => write!(f, "{job} has zero walltime"),
        }
    }
}

impl Error for SchedError {}

/// A job waiting in the scheduler queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// The job's id.
    pub id: JobId,
    /// The resources it needs (heterogeneous-group shape).
    pub request: AllocRequest,
    /// Requested walltime — the scheduler's planning horizon for the job.
    pub walltime: SimDuration,
    /// When it entered the queue.
    pub submit: SimTime,
    /// Accounting user.
    pub user: String,
    /// Additive QoS priority boost.
    pub qos_boost: f64,
}

/// A start decision from one scheduling cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedJob {
    /// The job that started.
    pub job: JobId,
    /// The allocation backing it.
    pub alloc: AllocationId,
}

#[derive(Debug, Clone)]
struct Running {
    job: JobId,
    user: String,
    demand: Demand,
    expected_end: SimTime,
    node_count: u32,
    started: SimTime,
}

/// The batch scheduler.
///
/// Drive it with [`submit`](BatchScheduler::submit) /
/// [`finished`](BatchScheduler::finished) /
/// [`try_schedule`](BatchScheduler::try_schedule); the caller owns the
/// simulation clock and the [`Cluster`]. The queueing discipline is a
/// [`QueuePolicy`] value: build one from a [`PolicySpec`] with
/// [`BatchScheduler::new`], or inject your own with
/// [`BatchScheduler::custom`].
#[derive(Debug)]
pub struct BatchScheduler {
    policy: Box<dyn QueuePolicy>,
    spec: Option<PolicySpec>,
    priority: PriorityCalculator,
    pending: Vec<PendingJob>,
    running: BTreeMap<AllocationId, Running>,
    total_started: u64,
    total_finished: u64,
    last_holds: Vec<(JobId, HoldReason)>,
}

impl BatchScheduler {
    /// Creates a scheduler from a policy spec: the spec's discipline
    /// becomes the live [`QueuePolicy`]; its weights and fairshare
    /// half-life configure the [`PriorityCalculator`].
    pub fn new(spec: PolicySpec) -> Self {
        BatchScheduler::with_parts(spec.build(), spec.calculator(), Some(spec))
    }

    /// Creates a scheduler around an externally implemented policy — the
    /// open end of the API (see the worked example on [`crate::policy`]).
    /// Uses default priorities; override with
    /// [`with_priority`](BatchScheduler::with_priority).
    pub fn custom(policy: Box<dyn QueuePolicy>) -> Self {
        BatchScheduler::with_parts(policy, PriorityCalculator::default(), None)
    }

    fn with_parts(
        policy: Box<dyn QueuePolicy>,
        priority: PriorityCalculator,
        spec: Option<PolicySpec>,
    ) -> Self {
        BatchScheduler {
            policy,
            spec,
            priority,
            pending: Vec::new(),
            running: BTreeMap::new(),
            total_started: 0,
            total_finished: 0,
            last_holds: Vec::new(),
        }
    }

    /// Replaces the priority calculator.
    pub fn with_priority(mut self, priority: PriorityCalculator) -> Self {
        self.priority = priority;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &dyn QueuePolicy {
        self.policy.as_ref()
    }

    /// The spec this scheduler was built from, if it came from one
    /// ([`BatchScheduler::custom`] schedulers have none).
    pub fn spec(&self) -> Option<PolicySpec> {
        self.spec
    }

    /// Jobs currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Why each job still queued after the last scheduling cycle was held,
    /// in the order the policy considered them. Empty between cycles with
    /// nothing pending. Reading this never affects scheduling decisions.
    pub fn last_holds(&self) -> &[(JobId, HoldReason)] {
        &self.last_holds
    }

    /// The queued jobs, in the order the policy last left them (after a
    /// [`try_schedule`](BatchScheduler::try_schedule) this is the
    /// policy's preference order with the started jobs removed).
    pub fn pending(&self) -> &[PendingJob] {
        &self.pending
    }

    /// Jobs currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Total jobs ever started.
    pub fn total_started(&self) -> u64 {
        self.total_started
    }

    /// The multifactor priority of a queued (or hypothetical) job at
    /// `now`, under this scheduler's weights and fairshare state.
    pub fn priority_of(&self, job: &PendingJob, now: SimTime) -> f64 {
        self.priority.priority(
            job.submit,
            Self::nodes_of(job),
            &job.user,
            job.qos_boost,
            now,
        )
    }

    /// The free-capacity timeline a scheduling cycle at `now` would plan
    /// against: current free capacity plus the expected releases of every
    /// running job, before any reservations. Useful for policy authoring
    /// and for asserting backfill invariants from the outside (see
    /// `crates/sched/tests/proptest_sched.rs`).
    pub fn availability_profile(&self, cluster: &Cluster, now: SimTime) -> Profile {
        let releases: Vec<(SimTime, Demand)> = self
            .running
            .values()
            .map(|r| (r.expected_end, r.demand.clone()))
            .collect();
        Profile::build(now, Demand::free_of(cluster), &releases)
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// [`SchedError::ImpossibleRequest`] if the request exceeds the
    /// machine's total capacity (it would block the queue forever);
    /// [`SchedError::ZeroWalltime`] for a zero walltime.
    pub fn submit(&mut self, job: PendingJob, cluster: &Cluster) -> Result<(), SchedError> {
        if job.walltime.is_zero() {
            return Err(SchedError::ZeroWalltime { job: job.id });
        }
        let mut capacity = Demand::new();
        for part in cluster.partitions() {
            let whole = AllocRequest::new().group(hpcqc_cluster::alloc::GroupRequest {
                partition: part.name().to_string(),
                nodes: part.node_count() as u32,
                gres: part
                    .gres_pools()
                    .iter()
                    .map(|p| (p.kind().clone(), p.capacity()))
                    .collect(),
            });
            capacity.add(&Demand::of_request(&whole));
        }
        let need = Demand::of_request(&job.request);
        if !capacity.covers(&need) {
            return Err(SchedError::ImpossibleRequest {
                job: job.id,
                reason: "demand exceeds total machine capacity".to_string(),
            });
        }
        self.pending.push(job);
        Ok(())
    }

    /// Removes a queued job. Returns `true` if it was still pending.
    pub fn cancel(&mut self, job: JobId) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.id != job);
        self.pending.len() != before
    }

    /// Notifies the scheduler that the job backing `alloc` finished at
    /// `now` (the caller releases the cluster allocation itself). Charges
    /// fairshare usage. Returns the finished job's id if known.
    pub fn finished(&mut self, alloc: AllocationId, now: SimTime) -> Option<JobId> {
        let running = self.running.remove(&alloc)?;
        let node_seconds =
            f64::from(running.node_count) * now.saturating_since(running.started).as_secs_f64();
        self.priority.record_usage(&running.user, node_seconds, now);
        self.total_finished += 1;
        Some(running.job)
    }

    /// Runs one scheduling cycle at `now`: the policy orders the queue,
    /// then every job it admits (and the live cluster can place) starts.
    /// Returns the started jobs in start order. Deterministic for
    /// identical inputs.
    pub fn try_schedule(&mut self, cluster: &mut Cluster, now: SimTime) -> Vec<StartedJob> {
        self.try_schedule_probed(cluster, now, &mut NoProbe)
    }

    /// [`try_schedule`](BatchScheduler::try_schedule) with a [`CycleProbe`]
    /// observing the cycle's internal phases. Scheduling decisions are
    /// byte-identical to the unprobed path — the probe only watches.
    pub fn try_schedule_probed(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        probe: &mut dyn CycleProbe,
    ) -> Vec<StartedJob> {
        self.last_holds.clear();
        if self.pending.is_empty() {
            return Vec::new();
        }
        probe.cycle_start(now, self.pending.len());
        probe.phase_start(CyclePhase::Order);
        self.policy
            .begin_cycle(&SchedCtx::new(now, cluster, &self.priority));
        self.policy.order(
            &mut self.pending,
            &SchedCtx::new(now, cluster, &self.priority),
        );
        let mut profile = self.availability_profile(cluster, now);
        probe.phase_end(CyclePhase::Order);

        let mut started = Vec::new();
        let mut still_pending: Vec<PendingJob> = Vec::new();

        for job in std::mem::take(&mut self.pending) {
            let demand = Demand::of_request(&job.request);
            probe.phase_start(CyclePhase::Admit);
            let verdict = self.policy.admit(
                &job,
                &demand,
                &mut profile,
                &SchedCtx::new(now, cluster, &self.priority),
            );
            probe.phase_end(CyclePhase::Admit);
            match verdict {
                Verdict::Start => {
                    probe.phase_start(CyclePhase::Allocate);
                    let granted = cluster.allocate(&job.request, now);
                    probe.phase_end(CyclePhase::Allocate);
                    match granted {
                        Ok(alloc) => {
                            profile.reserve(&demand, now, job.walltime);
                            self.running.insert(
                                alloc,
                                Running {
                                    job: job.id,
                                    user: job.user.clone(),
                                    demand,
                                    expected_end: now + job.walltime,
                                    node_count: Self::nodes_of(&job),
                                    started: now,
                                },
                            );
                            self.total_started += 1;
                            started.push(StartedJob { job: job.id, alloc });
                            continue;
                        }
                        Err(err) => {
                            // Profile said yes but the live cluster disagrees
                            // (e.g. failed nodes): treat as held, blaming the
                            // concrete shortage the allocator reported.
                            self.last_holds.push((job.id, Self::classify(&err)));
                        }
                    }
                }
                Verdict::Hold(reason) => {
                    self.last_holds.push((job.id, reason));
                }
            }
            self.policy.held(
                &job,
                &demand,
                &mut profile,
                &SchedCtx::new(now, cluster, &self.priority),
            );
            still_pending.push(job);
        }
        self.pending = still_pending;
        probe.cycle_end(started.len(), self.pending.len());
        started
    }

    fn nodes_of(job: &PendingJob) -> u32 {
        job.request.total_nodes()
    }

    /// Maps a live-allocation failure onto the same causes
    /// [`SchedCtx::hold_reason`] reports, so the ledger downstream never
    /// sees an unlabeled hold.
    fn classify(err: &ClusterError) -> HoldReason {
        match err {
            ClusterError::InsufficientNodes { .. } => HoldReason::InsufficientNodes,
            ClusterError::InsufficientGres { .. } | ClusterError::NoSuchGres { .. } => {
                HoldReason::InsufficientGres
            }
            _ => HoldReason::PolicyHold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_cluster::alloc::GroupRequest;
    use hpcqc_cluster::cluster::ClusterBuilder;
    use hpcqc_cluster::gres::GresKind;

    fn cluster(nodes: u32) -> Cluster {
        ClusterBuilder::new()
            .partition("classical", nodes)
            .partition_with_gres("quantum", 1, GresKind::qpu(), 1)
            .build(SimTime::ZERO)
    }

    fn job(id: u64, nodes: u32, walltime_s: u64, submit_s: u64) -> PendingJob {
        PendingJob {
            id: JobId::new(id),
            request: AllocRequest::new().group(GroupRequest::nodes("classical", nodes)),
            walltime: SimDuration::from_secs(walltime_s),
            submit: SimTime::from_secs(submit_s),
            user: "u".into(),
            qos_boost: 0.0,
        }
    }

    #[test]
    fn fcfs_starts_in_order_and_blocks() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::fcfs());
        s.submit(job(0, 6, 100, 0), &c).unwrap();
        s.submit(job(1, 6, 100, 1), &c).unwrap(); // cannot co-run with job 0
        s.submit(job(2, 2, 100, 2), &c).unwrap(); // would fit, but FCFS blocks
        let started = s.try_schedule(&mut c, SimTime::from_secs(10));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(0));
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn easy_backfills_around_blocked_head() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::easy());
        s.submit(job(0, 6, 100, 0), &c).unwrap(); // runs now, ends t=110
        s.submit(job(1, 6, 1_000, 1), &c).unwrap(); // blocked head, shadow t=110
        s.submit(job(2, 4, 50, 2), &c).unwrap(); // fits now, ends t=60 < 110 → backfills
        let started = s.try_schedule(&mut c, SimTime::from_secs(10));
        let ids: Vec<u64> = started.iter().map(|st| st.job.raw()).collect();
        assert_eq!(ids, vec![0, 2], "job2 must backfill around blocked job1");
    }

    #[test]
    fn easy_backfill_must_not_delay_head() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::easy());
        s.submit(job(0, 6, 100, 0), &c).unwrap(); // ends t=100
        s.submit(job(1, 6, 1_000, 1), &c).unwrap(); // head: shadow at t=100 needs 6
                                                    // 4-node job for 1000 s: fits now (4 ≤ 4 free), and at shadow t=100
                                                    // free is 10−6(head)=4 ≥ 4 → fine, backfills.
        s.submit(job(2, 4, 1_000, 2), &c).unwrap();
        // 5-node job for 1000 s: fits now? only 4 free → no.
        s.submit(job(3, 5, 1_000, 3), &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        let ids: Vec<u64> = started.iter().map(|st| st.job.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
        // Now make a job that fits now but would delay the head:
        // after 0 and 2 run, 0 free; nothing else can start.
        assert_eq!(s.try_schedule(&mut c, SimTime::from_secs(1)).len(), 0);
    }

    #[test]
    fn conservative_respects_all_reservations() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::conservative());
        s.submit(job(0, 10, 100, 0), &c).unwrap(); // fills machine until t=100
        s.submit(job(1, 10, 100, 1), &c).unwrap(); // reserved [100, 200)
        s.submit(job(2, 10, 100, 2), &c).unwrap(); // reserved [200, 300)
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(started.len(), 1);
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn finished_frees_and_next_cycle_starts() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::fcfs());
        s.submit(job(0, 10, 100, 0), &c).unwrap();
        s.submit(job(1, 10, 100, 1), &c).unwrap();
        let first = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(first.len(), 1);
        let end = SimTime::from_secs(100);
        c.release(first[0].alloc, end).unwrap();
        assert_eq!(s.finished(first[0].alloc, end), Some(JobId::new(0)));
        let second = s.try_schedule(&mut c, end);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].job, JobId::new(1));
        assert_eq!(s.total_started(), 2);
    }

    #[test]
    fn impossible_request_rejected_at_submit() {
        let c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::easy());
        let err = s.submit(job(0, 11, 100, 0), &c).unwrap_err();
        assert!(matches!(err, SchedError::ImpossibleRequest { .. }));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn zero_walltime_rejected() {
        let c = cluster(4);
        let mut s = BatchScheduler::new(PolicySpec::fcfs());
        let err = s.submit(job(0, 1, 0, 0), &c).unwrap_err();
        assert!(matches!(err, SchedError::ZeroWalltime { .. }));
    }

    #[test]
    fn cancel_removes_pending() {
        let c = cluster(4);
        let mut s = BatchScheduler::new(PolicySpec::fcfs());
        s.submit(job(0, 1, 10, 0), &c).unwrap();
        assert!(s.cancel(JobId::new(0)));
        assert!(!s.cancel(JobId::new(0)));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn hetjob_request_schedules_atomically() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::easy());
        let listing1 = PendingJob {
            id: JobId::new(0),
            request: AllocRequest::new()
                .group(GroupRequest::nodes("classical", 10))
                .group(GroupRequest::gres("quantum", GresKind::qpu(), 1)),
            walltime: SimDuration::from_hours(1),
            submit: SimTime::ZERO,
            user: "u".into(),
            qos_boost: 0.0,
        };
        s.submit(listing1, &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(started.len(), 1);
        assert_eq!(c.free_nodes("classical").unwrap(), 0);
        assert_eq!(c.free_gres("quantum", &GresKind::qpu()).unwrap(), 0);
    }

    #[test]
    fn priority_order_respected() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::fcfs());
        // Same submit, but job 1 has a QoS boost → runs first.
        let mut a = job(0, 10, 100, 0);
        a.qos_boost = 0.0;
        let mut b = job(1, 10, 100, 0);
        b.qos_boost = 50.0;
        s.submit(a, &c).unwrap();
        s.submit(b, &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(started[0].job, JobId::new(1));
    }

    #[test]
    fn deterministic_cycles() {
        let run = || {
            let mut c = cluster(16);
            let mut s = BatchScheduler::new(PolicySpec::easy());
            for i in 0..10 {
                s.submit(job(i, (i % 5 + 1) as u32 * 2, 100 + i * 7, i), &c)
                    .unwrap();
            }
            let mut order = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..20 {
                for st in s.try_schedule(&mut c, now) {
                    order.push(st.job.raw());
                    // Finish immediately after 50 s to keep the test short.
                    let end = now + SimDuration::from_secs(50);
                    c.release(st.alloc, end).unwrap();
                    s.finished(st.alloc, end);
                }
                now += SimDuration::from_secs(50);
            }
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn priority_backfill_escalates_aged_jobs() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::priority_backfill(1.0));
        let mut old = job(0, 10, 100, 0);
        old.qos_boost = 0.0;
        let mut boosted = job(1, 10, 100, 3_000);
        boosted.qos_boost = 10_000.0;
        s.submit(old, &c).unwrap();
        s.submit(boosted, &c).unwrap();
        // At t=3650 job 0 is over an hour old: escalation beats the boost.
        let started = s.try_schedule(&mut c, SimTime::from_secs(3_650));
        assert_eq!(started[0].job, JobId::new(0));
        // Without escalation (below the threshold) the boost wins.
        let mut c2 = cluster(10);
        let mut s2 = BatchScheduler::new(PolicySpec::priority_backfill(10.0));
        s2.submit(job(0, 10, 100, 0), &c2).unwrap();
        let mut boosted2 = job(1, 10, 100, 3_000);
        boosted2.qos_boost = 10_000.0;
        s2.submit(boosted2, &c2).unwrap();
        let started = s2.try_schedule(&mut c2, SimTime::from_secs(3_650));
        assert_eq!(started[0].job, JobId::new(1));
    }

    #[test]
    fn quantum_aware_boosts_only_while_qpu_idle() {
        let hybrid = |id: u64, submit: u64| PendingJob {
            id: JobId::new(id),
            request: AllocRequest::new()
                .group(GroupRequest::nodes("classical", 10))
                .group(GroupRequest::gres("quantum", GresKind::qpu(), 1)),
            walltime: SimDuration::from_secs(600),
            submit: SimTime::from_secs(submit),
            user: "u".into(),
            qos_boost: 0.0,
        };
        // QPU idle: the newer hybrid job outranks the older classical one.
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::quantum_aware(1_000.0));
        s.submit(job(0, 10, 600, 0), &c).unwrap();
        s.submit(hybrid(1, 3_600), &c).unwrap();
        let started = s.try_schedule(&mut c, SimTime::from_secs(3_600));
        assert_eq!(started[0].job, JobId::new(1), "idle QPU boosts the hybrid");

        // QPU busy: no boost — the older classical job wins.
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::quantum_aware(1_000.0));
        s.submit(hybrid(9, 0), &c).unwrap();
        let first = s.try_schedule(&mut c, SimTime::ZERO);
        assert_eq!(first.len(), 1, "hybrid occupies the QPU");
        // Free the classical nodes but keep holding the QPU gres: release
        // is all-or-nothing, so instead submit against the occupied QPU.
        s.submit(job(0, 5, 600, 10), &c).unwrap();
        s.submit(hybrid(1, 3_600), &c).unwrap();
        let order = s.try_schedule(&mut c, SimTime::from_secs(3_600));
        assert!(
            order.is_empty(),
            "machine is full; ordering is all that ran"
        );
        let heads: Vec<u64> = s.pending().iter().map(|p| p.id.raw()).collect();
        assert_eq!(
            heads,
            vec![0, 1],
            "with the QPU busy the older classical job keeps the head"
        );
    }

    #[test]
    fn custom_policy_runs_through_the_scheduler() {
        // Covered in depth by the doctest on `crate::policy`; here just
        // assert the plumbing accepts an external policy.
        #[derive(Debug)]
        struct AdmitNothing;
        impl QueuePolicy for AdmitNothing {
            fn name(&self) -> &str {
                "admit-nothing"
            }
            fn order(&mut self, _queue: &mut [PendingJob], _ctx: &SchedCtx<'_>) {}
            fn admit(
                &mut self,
                _job: &PendingJob,
                _demand: &Demand,
                _profile: &mut Profile,
                _ctx: &SchedCtx<'_>,
            ) -> Verdict {
                Verdict::Hold(HoldReason::PolicyHold)
            }
        }
        let mut c = cluster(10);
        let mut s = BatchScheduler::custom(Box::new(AdmitNothing));
        assert_eq!(s.policy().name(), "admit-nothing");
        assert!(s.spec().is_none());
        s.submit(job(0, 1, 100, 0), &c).unwrap();
        assert!(s.try_schedule(&mut c, SimTime::ZERO).is_empty());
        assert_eq!(s.pending_len(), 1);
        assert_eq!(
            s.last_holds(),
            &[(JobId::new(0), HoldReason::PolicyHold)],
            "the cycle records why the job was held"
        );
    }

    #[test]
    fn availability_profile_tracks_running_releases() {
        let mut c = cluster(10);
        let mut s = BatchScheduler::new(PolicySpec::easy());
        s.submit(job(0, 6, 100, 0), &c).unwrap();
        assert_eq!(s.try_schedule(&mut c, SimTime::ZERO).len(), 1);
        let p = s.availability_profile(&c, SimTime::ZERO);
        assert_eq!(p.free_at(SimTime::from_secs(50)).nodes_in("classical"), 4);
        assert_eq!(p.free_at(SimTime::from_secs(100)).nodes_in("classical"), 10);
    }
}
