//! The open queue-policy API: the [`QueuePolicy`] trait, the
//! [`SchedCtx`] capability handle policies decide against, and the
//! serde-able [`PolicySpec`] that names a policy in scenarios, sweep
//! grids and on the command line.
//!
//! The batch scheduler itself ([`BatchScheduler`](crate::BatchScheduler))
//! is policy-agnostic:
//! every scheduling cycle it asks the policy to order the queue, then
//! walks it asking `admit` for each job against the free-capacity
//! [`Profile`], allocating the admitted ones and telling the policy about
//! the held ones. Everything discipline-specific — FCFS head blocking,
//! EASY's shadow reservation, conservative's per-job reservations,
//! priority aging, quantum-aware boosting — lives behind this trait, in
//! [`crate::policies`].
//!
//! # Implementing a custom policy
//!
//! A policy is a small state machine over one scheduling cycle. Here is a
//! complete LIFO (newest-first) policy, run through the stock scheduler:
//!
//! ```
//! use hpcqc_cluster::{AllocRequest, ClusterBuilder, GroupRequest};
//! use hpcqc_sched::policy::{QueuePolicy, SchedCtx, Verdict};
//! use hpcqc_sched::{BatchScheduler, Demand, PendingJob, Profile};
//! use hpcqc_simcore::time::{SimDuration, SimTime};
//! use hpcqc_workload::JobId;
//!
//! /// Newest submission first; no backfilling, no reservations.
//! #[derive(Debug)]
//! struct Lifo;
//!
//! impl QueuePolicy for Lifo {
//!     fn name(&self) -> &str {
//!         "lifo"
//!     }
//!
//!     fn order(&mut self, queue: &mut [PendingJob], _ctx: &SchedCtx<'_>) {
//!         queue.sort_by(|a, b| b.submit.cmp(&a.submit).then(b.id.cmp(&a.id)));
//!     }
//!
//!     fn admit(
//!         &mut self,
//!         job: &PendingJob,
//!         _demand: &Demand,
//!         _profile: &mut Profile,
//!         ctx: &SchedCtx<'_>,
//!     ) -> Verdict {
//!         if ctx.can_allocate(&job.request) {
//!             Verdict::Start
//!         } else {
//!             // `hold_reason` names the binding shortage for the
//!             // attribution layer (insufficient nodes, QPU tokens, …).
//!             Verdict::Hold(ctx.hold_reason(&job.request))
//!         }
//!     }
//! }
//!
//! let mut cluster = ClusterBuilder::new()
//!     .partition("classical", 4)
//!     .build(SimTime::ZERO);
//! let mut sched = BatchScheduler::custom(Box::new(Lifo));
//! for (id, submit) in [(0, 0), (1, 60)] {
//!     sched.submit(
//!         PendingJob {
//!             id: JobId::new(id),
//!             request: AllocRequest::new().group(GroupRequest::nodes("classical", 4)),
//!             walltime: SimDuration::from_secs(600),
//!             submit: SimTime::from_secs(submit),
//!             user: "doc".into(),
//!             qos_boost: 0.0,
//!         },
//!         &cluster,
//!     )?;
//! }
//! let started = sched.try_schedule(&mut cluster, SimTime::from_secs(60));
//! assert_eq!(started[0].job, JobId::new(1), "LIFO starts the newest job");
//! # Ok::<(), hpcqc_sched::SchedError>(())
//! ```

use crate::demand::{Demand, Profile};
use crate::policies;
use crate::priority::{PriorityCalculator, PriorityWeights};
use crate::scheduler::PendingJob;
use hpcqc_cluster::alloc::{AllocRequest, GroupRequest};
use hpcqc_cluster::cluster::Cluster;
use hpcqc_cluster::error::ClusterError;
use hpcqc_cluster::gres::GresKind;
use hpcqc_simcore::time::SimTime;
use serde::{Deserialize, Serialize, Value};
use std::cmp::Reverse;
use std::fmt;
use std::str::FromStr;

/// Why a queued job (or, at the device layer, a routed kernel) is
/// waiting instead of running — the causal label behind every hold.
///
/// The first four variants are produced by queue policies at scheduling
/// cycles (see [`SchedCtx::hold_reason`] for the resource
/// classification); the `Device*` variants are reserved for the fleet /
/// device layer, which reuses this vocabulary so one cause taxonomy
/// spans batch-queue waits and intra-QPU waits.
///
/// The `Ord` impl exists so reasons can key `BTreeMap` blame tables;
/// the order itself carries no meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HoldReason {
    /// Not enough free classical nodes to place the request.
    InsufficientNodes,
    /// Not enough free gres tokens (QPU contention at the batch layer:
    /// every token is held by another job).
    InsufficientGres,
    /// Resources would fit the live cluster right now, but starting
    /// would delay a protected reservation — EASY's head shadow, or a
    /// conservative per-job reservation carved earlier in the cycle.
    HeadShadow,
    /// The policy held the job for its own reasons while resources fit
    /// (FCFS head-of-line blocking, custom policy logic).
    PolicyHold,
    /// Kernel queued behind a busy device (intra-QPU contention).
    DeviceBusy,
    /// Kernel waiting out a device recalibration window.
    DeviceRecalibrating,
    /// Kernel blocked on a device that is out of service.
    DeviceDown,
    /// Job (or kernel) waiting out fault recovery: retry backoff after a
    /// failed kernel, or re-queueing after a fault-driven restart.
    FaultRecovery,
}

/// Every [`HoldReason`] variant, for blame-table iteration.
pub const ALL_HOLD_REASONS: [HoldReason; 8] = [
    HoldReason::InsufficientNodes,
    HoldReason::InsufficientGres,
    HoldReason::HeadShadow,
    HoldReason::PolicyHold,
    HoldReason::DeviceBusy,
    HoldReason::DeviceRecalibrating,
    HoldReason::DeviceDown,
    HoldReason::FaultRecovery,
];

impl HoldReason {
    /// Short kebab-case cause label for tables and traces.
    /// [`HoldReason::InsufficientGres`] reads `qpu-contention`: in this
    /// simulator every gres token is a QPU token, and "who pays the QPU
    /// wait" is the question the label answers.
    pub fn label(&self) -> &'static str {
        match self {
            HoldReason::InsufficientNodes => "insufficient-nodes",
            HoldReason::InsufficientGres => "qpu-contention",
            HoldReason::HeadShadow => "head-shadow",
            HoldReason::PolicyHold => "policy-hold",
            HoldReason::DeviceBusy => "device-busy",
            HoldReason::DeviceRecalibrating => "device-recalibrating",
            HoldReason::DeviceDown => "device-down",
            HoldReason::FaultRecovery => "fault-recovery",
        }
    }
}

impl fmt::Display for HoldReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A policy's verdict on one queued job during one scheduling cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Start the job now (the scheduler still re-validates against the
    /// live cluster; a failed allocation turns into a hold).
    Start,
    /// Keep the job queued this cycle, for the stated reason.
    Hold(HoldReason),
}

/// Read-only capability handle a [`QueuePolicy`] decides against.
///
/// Exposes exactly what a queueing discipline may observe: the cycle
/// instant, the live cluster (free capacity, gres availability) and the
/// scheduler's multifactor priority of any queued job. Mutation stays
/// with the scheduler.
#[derive(Debug)]
pub struct SchedCtx<'a> {
    now: SimTime,
    cluster: &'a Cluster,
    priority: &'a PriorityCalculator,
}

impl<'a> SchedCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        cluster: &'a Cluster,
        priority: &'a PriorityCalculator,
    ) -> Self {
        SchedCtx {
            now,
            cluster,
            priority,
        }
    }

    /// The instant of this scheduling cycle.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The live cluster, read-only.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The job's multifactor priority (age, size, QoS, fairshare) as of
    /// [`SchedCtx::now`].
    pub fn priority_of(&self, job: &PendingJob) -> f64 {
        self.priority.priority(
            job.submit,
            job.request.total_nodes(),
            &job.user,
            job.qos_boost,
            self.now,
        )
    }

    /// `true` if the live cluster can satisfy `request` right now.
    pub fn can_allocate(&self, request: &AllocRequest) -> bool {
        self.cluster.can_allocate(request).is_ok()
    }

    /// Classifies why `request` is not running right now: the binding
    /// resource shortage, or [`HoldReason::PolicyHold`] when the live
    /// cluster could satisfy it (the hold is the policy's own doing).
    /// Purely read-only — calling it cannot perturb a scheduling cycle.
    ///
    /// When *both* the node pool and the request's gres tokens are
    /// exhausted, the gres wins the blame: even a cluster with infinite
    /// free nodes would still hold the job, so the token is the binding
    /// constraint. (Nodes recycle every few minutes as batch jobs drain;
    /// a co-scheduled QPU token is pinned for a whole hybrid campaign —
    /// attributing the scarcer, slower-recycling resource is what makes
    /// the wait ledger actionable.)
    pub fn hold_reason(&self, request: &AllocRequest) -> HoldReason {
        match self.cluster.can_allocate(request) {
            Ok(()) => HoldReason::PolicyHold,
            Err(ClusterError::InsufficientNodes { .. }) => {
                if self.gres_also_blocked(request) {
                    HoldReason::InsufficientGres
                } else {
                    HoldReason::InsufficientNodes
                }
            }
            Err(ClusterError::InsufficientGres { .. } | ClusterError::NoSuchGres { .. }) => {
                HoldReason::InsufficientGres
            }
            Err(_) => HoldReason::PolicyHold,
        }
    }

    /// `true` if the gres-only residue of `request` (every group's token
    /// demands, with the node demands dropped) cannot be satisfied either.
    fn gres_also_blocked(&self, request: &AllocRequest) -> bool {
        let mut residue = AllocRequest::new();
        for group in request.groups() {
            if group.gres.iter().any(|(_, n)| *n > 0) {
                residue = residue.group(GroupRequest {
                    partition: group.partition.clone(),
                    nodes: 0,
                    gres: group.gres.clone(),
                });
            }
        }
        !residue.is_empty() && self.cluster.can_allocate(&residue).is_err()
    }

    /// Total free units of a gres kind across every partition (e.g. idle
    /// QPU tokens — what [`crate::policies::QuantumAware`] keys on).
    pub fn free_gres(&self, kind: &GresKind) -> u32 {
        self.cluster
            .partitions()
            .iter()
            .flat_map(|p| p.gres_pools().iter())
            .filter(|pool| pool.kind() == kind)
            .map(|pool| pool.available())
            .sum()
    }
}

/// A batch-scheduler queueing discipline.
///
/// One value lives for the scheduler's whole lifetime; per-cycle state
/// (like "has the head blocked yet") is reset in
/// [`begin_cycle`](QueuePolicy::begin_cycle). See the
/// [module docs](self) for a complete worked example, and
/// [`crate::policies`] for the five built-ins.
pub trait QueuePolicy: fmt::Debug + Send {
    /// Short label for tables and logs (e.g. `easy-backfill`).
    fn name(&self) -> &str;

    /// Resets per-cycle state. Called once at the start of every
    /// scheduling cycle, before [`order`](QueuePolicy::order).
    fn begin_cycle(&mut self, _ctx: &SchedCtx<'_>) {}

    /// Orders the queue for this cycle, most-preferred first. The
    /// scheduler walks the queue in this order.
    fn order(&mut self, queue: &mut [PendingJob], ctx: &SchedCtx<'_>);

    /// Decides whether `job` (the next in order) may start now. `demand`
    /// is the job's flattened footprint; `profile` is the cycle's
    /// free-capacity timeline, already carrying every reservation made
    /// earlier in the cycle (a policy may carve further reservations).
    fn admit(
        &mut self,
        job: &PendingJob,
        demand: &Demand,
        profile: &mut Profile,
        ctx: &SchedCtx<'_>,
    ) -> Verdict;

    /// Called when `job` stays queued this cycle — either because
    /// [`admit`](QueuePolicy::admit) held it, or because the live cluster
    /// refused an admitted start (e.g. failed nodes). A policy may protect
    /// the job with a reservation here (EASY protects the first held job,
    /// its "head").
    fn held(
        &mut self,
        _job: &PendingJob,
        _demand: &Demand,
        _profile: &mut Profile,
        _ctx: &SchedCtx<'_>,
    ) {
    }
}

/// Total-order wrapper so `f64` priorities can key a sort.
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Sorts a queue by multifactor priority (highest first), ties broken by
/// submit time then job id — the ordering every built-in policy starts
/// from. Custom policies can call this and then locally adjust.
pub fn sort_multifactor(queue: &mut [PendingJob], ctx: &SchedCtx<'_>) {
    sort_by_score(queue, |job| ctx.priority_of(job));
}

/// Sorts a queue by an arbitrary score (highest first), ties broken by
/// submit time then job id. The score is evaluated once per job.
pub fn sort_by_score(queue: &mut [PendingJob], mut score: impl FnMut(&PendingJob) -> f64) {
    queue.sort_by_cached_key(|job| (Reverse(OrdF64(score(job))), job.submit, job.id));
}

/// Default aging threshold (hours) for
/// [`Discipline::PriorityBackfill`]: a day in queue escalates a job to
/// the front.
pub const DEFAULT_ESCALATE_AFTER_HOURS: f64 = 24.0;

/// Default idle-QPU priority boost for [`Discipline::QuantumAware`]
/// (1000 pts ≈ 100 hours of queue age at default weights: decisive in
/// any realistic queue).
pub const DEFAULT_IDLE_BOOST: f64 = 1_000.0;

/// Default fairshare half-life: one day, matching
/// [`PriorityCalculator::new`].
pub const DEFAULT_FAIRSHARE_HALF_LIFE_SECS: f64 = 86_400.0;

/// The queueing discipline named by a [`PolicySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Discipline {
    /// Strict first-come-first-served: the queue head blocks everything
    /// behind it.
    Fcfs,
    /// EASY backfilling: the head gets a reservation at its earliest
    /// feasible start; later jobs may start now if they do not delay it.
    EasyBackfill,
    /// Conservative backfilling: every queued job gets a reservation; a
    /// job may jump ahead only without delaying any of them.
    ConservativeBackfill,
    /// EASY mechanics plus hard aging: a job queued longer than the
    /// threshold escalates to the front (oldest first), where the head
    /// reservation guarantees it a start — no starvation, ever.
    PriorityBackfill {
        /// Queue age (hours) past which a job escalates to the front.
        escalate_after_hours: f64,
    },
    /// EASY mechanics plus an idle-QPU boost: whenever a QPU gres token
    /// sits free, jobs requesting QPU gres gain `idle_boost` priority
    /// points, pulling quantum work forward to soak up idle QPU time
    /// (à la SCIM MILQ).
    QuantumAware {
        /// Priority points added to QPU-requesting jobs while a QPU idles.
        idle_boost: f64,
    },
}

impl Discipline {
    /// Short kebab-case label (the [`fmt::Display`] form without knobs).
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Fcfs => "fcfs",
            Discipline::EasyBackfill => "easy-backfill",
            Discipline::ConservativeBackfill => "conservative-backfill",
            Discipline::PriorityBackfill { .. } => "priority-backfill",
            Discipline::QuantumAware { .. } => "quantum-aware",
        }
    }
}

/// Serde-able specification of a queue policy: the discipline plus the
/// multifactor [`PriorityWeights`] and fairshare half-life driving queue
/// order — knobs that used to be silent [`PriorityCalculator`] defaults.
///
/// `PolicySpec` is what scenarios, sweep grids and the CLI carry;
/// [`PolicySpec::build`] turns it into the live [`QueuePolicy`] and
/// [`PolicySpec::calculator`] into the matching priority calculator.
///
/// In JSON it accepts three forms (and always serializes the full one):
///
/// ```json
/// "EasyBackfill"
/// {"QuantumAware": {"idle_boost": 500.0}}
/// {"discipline": "Fcfs", "weights": {"age_per_hour": 20.0,
///  "size_per_node": 0.1, "fairshare_per_node_hour": 1.0},
///  "fairshare_half_life_secs": 43200.0}
/// ```
///
/// # Examples
///
/// ```
/// use hpcqc_sched::PolicySpec;
///
/// let spec: PolicySpec = "priority-backfill:age=20".parse()?;
/// assert_eq!(spec.to_string(), "priority-backfill:age=20");
/// let policy = spec.build();
/// assert_eq!(policy.name(), "priority-backfill");
/// # Ok::<(), hpcqc_sched::ParsePolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicySpec {
    /// The queueing discipline.
    pub discipline: Discipline,
    /// Multifactor priority weights driving queue order.
    pub weights: PriorityWeights,
    /// Fairshare usage-decay half-life, seconds (must be positive).
    pub fairshare_half_life_secs: f64,
}

impl PolicySpec {
    /// Strict FCFS with default priority knobs.
    pub const fn fcfs() -> Self {
        PolicySpec::of(Discipline::Fcfs)
    }

    /// EASY backfilling with default priority knobs (the production
    /// default).
    pub const fn easy() -> Self {
        PolicySpec::of(Discipline::EasyBackfill)
    }

    /// Conservative backfilling with default priority knobs.
    pub const fn conservative() -> Self {
        PolicySpec::of(Discipline::ConservativeBackfill)
    }

    /// Priority backfilling escalating jobs older than
    /// `escalate_after_hours` to the front.
    pub const fn priority_backfill(escalate_after_hours: f64) -> Self {
        PolicySpec::of(Discipline::PriorityBackfill {
            escalate_after_hours,
        })
    }

    /// Quantum-aware backfilling boosting QPU-requesting jobs by
    /// `idle_boost` points while a QPU idles.
    pub const fn quantum_aware(idle_boost: f64) -> Self {
        PolicySpec::of(Discipline::QuantumAware { idle_boost })
    }

    /// A spec of the given discipline with default priority knobs.
    pub const fn of(discipline: Discipline) -> Self {
        PolicySpec {
            discipline,
            weights: PriorityWeights::DEFAULT,
            fairshare_half_life_secs: DEFAULT_FAIRSHARE_HALF_LIFE_SECS,
        }
    }

    /// Replaces the priority weights.
    pub const fn with_weights(mut self, weights: PriorityWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces the fairshare half-life (seconds).
    pub const fn with_fairshare_half_life_secs(mut self, secs: f64) -> Self {
        self.fairshare_half_life_secs = secs;
        self
    }

    /// Builds the live policy this spec names.
    pub fn build(&self) -> Box<dyn QueuePolicy> {
        match self.discipline {
            Discipline::Fcfs => Box::new(policies::Fcfs::new()),
            Discipline::EasyBackfill => Box::new(policies::EasyBackfill::new()),
            Discipline::ConservativeBackfill => Box::new(policies::ConservativeBackfill::new()),
            Discipline::PriorityBackfill {
                escalate_after_hours,
            } => Box::new(policies::PriorityBackfill::new(escalate_after_hours)),
            Discipline::QuantumAware { idle_boost } => {
                Box::new(policies::QuantumAware::new(idle_boost))
            }
        }
    }

    /// Builds the priority calculator this spec configures (weights +
    /// fairshare half-life).
    ///
    /// # Panics
    ///
    /// Panics if the half-life is not positive — run
    /// [`PolicySpec::validate`] on deserialized specs first, as the CLI
    /// and the sweep grid's `Grid::validate` both do.
    pub fn calculator(&self) -> PriorityCalculator {
        PriorityCalculator::new(self.weights).with_half_life_secs(self.fairshare_half_life_secs)
    }

    /// Checks knobs a (possibly deserialized) spec could get wrong.
    pub fn validate(&self) -> Result<(), String> {
        let finite = |name: &str, v: f64| {
            if v.is_finite() {
                Ok(())
            } else {
                Err(format!("policy `{}`: {name} must be finite", self))
            }
        };
        finite("age_per_hour", self.weights.age_per_hour)?;
        finite("size_per_node", self.weights.size_per_node)?;
        finite(
            "fairshare_per_node_hour",
            self.weights.fairshare_per_node_hour,
        )?;
        if !(self.fairshare_half_life_secs > 0.0 && self.fairshare_half_life_secs.is_finite()) {
            return Err(format!(
                "policy `{}`: fairshare_half_life_secs must be positive and finite",
                self
            ));
        }
        match self.discipline {
            Discipline::PriorityBackfill {
                escalate_after_hours,
            } if !(escalate_after_hours > 0.0 && escalate_after_hours.is_finite()) => Err(format!(
                "policy `{}`: escalate_after_hours must be positive and finite",
                self
            )),
            Discipline::QuantumAware { idle_boost }
                if !(idle_boost >= 0.0 && idle_boost.is_finite()) =>
            {
                Err(format!(
                    "policy `{}`: idle_boost must be non-negative and finite",
                    self
                ))
            }
            _ => Ok(()),
        }
    }
}

impl Default for PolicySpec {
    /// EASY backfill, the production default.
    fn default() -> Self {
        PolicySpec::easy()
    }
}

impl From<Discipline> for PolicySpec {
    fn from(discipline: Discipline) -> Self {
        PolicySpec::of(discipline)
    }
}

impl fmt::Display for PolicySpec {
    /// The short CLI label: `fcfs`, `easy-backfill`,
    /// `conservative-backfill`, `priority-backfill:age=H`,
    /// `quantum-aware:boost=P`. Round-trips through [`FromStr`] for any
    /// spec with default weights (the weights themselves have no short
    /// form; they travel as JSON).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.discipline {
            Discipline::PriorityBackfill {
                escalate_after_hours,
            } => write!(f, "priority-backfill:age={escalate_after_hours}"),
            Discipline::QuantumAware { idle_boost } => {
                write!(f, "quantum-aware:boost={idle_boost}")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// Why a policy string failed to parse. `name` is the discipline part the
/// caller typed (before any `:knob=`), for "did you mean" hints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// The full rejected input.
    pub input: String,
    /// The discipline name part of the input.
    pub name: String,
}

/// Every policy form [`FromStr`] accepts, for error messages and usage
/// text.
pub const POLICY_FORMS: &str =
    "fcfs | easy[-backfill] | conservative[-backfill] | priority-backfill[:age=H] | quantum-aware[:boost=P]";

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy `{}` (valid: {POLICY_FORMS})", self.input)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicySpec {
    type Err = ParsePolicyError;

    /// Parses the short CLI form (see [`fmt::Display`]); `easy` and
    /// `conservative` are accepted as shorthands.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, knob) = match s.split_once(':') {
            Some((name, knob)) => (name, Some(knob)),
            None => (s, None),
        };
        let bad = || ParsePolicyError {
            input: s.to_string(),
            name: name.to_string(),
        };
        let knob_value = |key: &str| -> Result<Option<f64>, ParsePolicyError> {
            match knob {
                None => Ok(None),
                Some(k) => {
                    let (kk, kv) = k.split_once('=').ok_or_else(bad)?;
                    if kk != key {
                        return Err(bad());
                    }
                    let v: f64 = kv.parse().map_err(|_| bad())?;
                    if !v.is_finite() {
                        return Err(bad());
                    }
                    Ok(Some(v))
                }
            }
        };
        match name {
            "fcfs" => knob_value("")
                .and_then(|k| if k.is_none() { Ok(()) } else { Err(bad()) })
                .map(|()| PolicySpec::fcfs()),
            "easy" | "easy-backfill" => knob_value("")
                .and_then(|k| if k.is_none() { Ok(()) } else { Err(bad()) })
                .map(|()| PolicySpec::easy()),
            "conservative" | "conservative-backfill" => knob_value("")
                .and_then(|k| if k.is_none() { Ok(()) } else { Err(bad()) })
                .map(|()| PolicySpec::conservative()),
            "priority-backfill" => {
                let hours = knob_value("age")?.unwrap_or(DEFAULT_ESCALATE_AFTER_HOURS);
                if hours <= 0.0 {
                    return Err(bad());
                }
                Ok(PolicySpec::priority_backfill(hours))
            }
            "quantum-aware" => {
                let boost = knob_value("boost")?.unwrap_or(DEFAULT_IDLE_BOOST);
                if boost < 0.0 {
                    return Err(bad());
                }
                Ok(PolicySpec::quantum_aware(boost))
            }
            _ => Err(bad()),
        }
    }
}

impl Serialize for PolicySpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("discipline".to_string(), self.discipline.to_value()),
            ("weights".to_string(), self.weights.to_value()),
            (
                "fairshare_half_life_secs".to_string(),
                self.fairshare_half_life_secs.to_value(),
            ),
        ])
    }
}

impl Deserialize for PolicySpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        // Full form: {"discipline": …, "weights": …, "fairshare_half_life_secs": …}
        // (missing knobs take the documented defaults).
        if let Some(d) = v.get("discipline") {
            let discipline = Discipline::from_value(d)?;
            let weights = match v.get("weights") {
                Some(w) => PriorityWeights::from_value(w)?,
                None => PriorityWeights::DEFAULT,
            };
            let fairshare_half_life_secs = match v.get("fairshare_half_life_secs") {
                Some(h) => f64::from_value(h)?,
                None => DEFAULT_FAIRSHARE_HALF_LIFE_SECS,
            };
            return Ok(PolicySpec {
                discipline,
                weights,
                fairshare_half_life_secs,
            });
        }
        // Short CLI label ("easy-backfill", "priority-backfill:age=20").
        if let Value::Str(s) = v {
            if let Ok(spec) = s.parse::<PolicySpec>() {
                return Ok(spec);
            }
        }
        // Bare discipline: "Fcfs" or {"QuantumAware": {"idle_boost": …}}.
        Discipline::from_value(v).map(PolicySpec::of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_labels() {
        assert_eq!(PolicySpec::fcfs().to_string(), "fcfs");
        assert_eq!(PolicySpec::easy().to_string(), "easy-backfill");
        assert_eq!(
            PolicySpec::conservative().to_string(),
            "conservative-backfill"
        );
        assert_eq!(
            PolicySpec::priority_backfill(20.0).to_string(),
            "priority-backfill:age=20"
        );
        assert_eq!(
            PolicySpec::quantum_aware(500.0).to_string(),
            "quantum-aware:boost=500"
        );
    }

    #[test]
    fn from_str_round_trips_display() {
        for spec in [
            PolicySpec::fcfs(),
            PolicySpec::easy(),
            PolicySpec::conservative(),
            PolicySpec::priority_backfill(20.0),
            PolicySpec::priority_backfill(1.5),
            PolicySpec::quantum_aware(500.0),
            PolicySpec::quantum_aware(0.0),
        ] {
            let parsed: PolicySpec = spec.to_string().parse().expect("round trip parses");
            assert_eq!(parsed, spec, "{spec}");
        }
    }

    #[test]
    fn from_str_accepts_shorthands_and_defaults() {
        assert_eq!("easy".parse::<PolicySpec>().unwrap(), PolicySpec::easy());
        assert_eq!(
            "conservative".parse::<PolicySpec>().unwrap(),
            PolicySpec::conservative()
        );
        assert_eq!(
            "priority-backfill".parse::<PolicySpec>().unwrap(),
            PolicySpec::priority_backfill(DEFAULT_ESCALATE_AFTER_HOURS)
        );
        assert_eq!(
            "quantum-aware".parse::<PolicySpec>().unwrap(),
            PolicySpec::quantum_aware(DEFAULT_IDLE_BOOST)
        );
    }

    #[test]
    fn from_str_rejects_junk_with_the_typed_name() {
        let err = "quantum-awre".parse::<PolicySpec>().unwrap_err();
        assert_eq!(err.name, "quantum-awre");
        assert!(err.to_string().contains("valid:"));
        for bad in [
            "easy:age=2",                // knob on a knobless policy
            "priority-backfill:age",     // missing value
            "priority-backfill:age=x",   // non-numeric
            "priority-backfill:age=0",   // aging must be positive
            "priority-backfill:boost=1", // wrong knob name
            "quantum-aware:boost=-1",    // negative boost
            "quantum-aware:boost=inf",   // non-finite
        ] {
            assert!(bad.parse::<PolicySpec>().is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn serde_accepts_all_three_json_forms() {
        let from = |json: &str| -> PolicySpec { serde_json::from_str(json).expect(json) };
        assert_eq!(from("\"EasyBackfill\""), PolicySpec::easy());
        assert_eq!(from("\"easy-backfill\""), PolicySpec::easy());
        assert_eq!(from("\"Fcfs\""), PolicySpec::fcfs());
        assert_eq!(
            from("{\"QuantumAware\": {\"idle_boost\": 500.0}}"),
            PolicySpec::quantum_aware(500.0)
        );
        assert_eq!(
            from("\"priority-backfill:age=20\""),
            PolicySpec::priority_backfill(20.0)
        );
        let full = from(
            "{\"discipline\": \"Fcfs\", \"weights\": {\"age_per_hour\": 20.0, \
             \"size_per_node\": 0.0, \"fairshare_per_node_hour\": 2.0}, \
             \"fairshare_half_life_secs\": 3600.0}",
        );
        assert_eq!(full.discipline, Discipline::Fcfs);
        assert_eq!(full.weights.age_per_hour, 20.0);
        assert_eq!(full.fairshare_half_life_secs, 3600.0);
        // Partial full form: missing knobs default.
        let partial = from("{\"discipline\": \"EasyBackfill\"}");
        assert_eq!(partial, PolicySpec::easy());
    }

    #[test]
    fn serde_round_trips_losslessly() {
        for spec in [
            PolicySpec::easy(),
            PolicySpec::priority_backfill(6.0).with_weights(PriorityWeights {
                age_per_hour: 50.0,
                size_per_node: -0.5,
                fairshare_per_node_hour: 2.0,
            }),
            PolicySpec::quantum_aware(250.0).with_fairshare_half_life_secs(7_200.0),
        ] {
            let json = serde_json::to_string(&spec).expect("serializes");
            let back: PolicySpec = serde_json::from_str(&json).expect("parses back");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn validate_catches_bad_knobs() {
        assert!(PolicySpec::easy().validate().is_ok());
        assert!(PolicySpec::priority_backfill(0.0).validate().is_err());
        assert!(PolicySpec::quantum_aware(-1.0).validate().is_err());
        assert!(PolicySpec::easy()
            .with_fairshare_half_life_secs(0.0)
            .validate()
            .is_err());
        let mut w = PriorityWeights::DEFAULT;
        w.age_per_hour = f64::NAN;
        assert!(PolicySpec::easy().with_weights(w).validate().is_err());
    }

    #[test]
    fn builds_name_matches_discipline() {
        for (spec, name) in [
            (PolicySpec::fcfs(), "fcfs"),
            (PolicySpec::easy(), "easy-backfill"),
            (PolicySpec::conservative(), "conservative-backfill"),
            (PolicySpec::priority_backfill(2.0), "priority-backfill"),
            (PolicySpec::quantum_aware(10.0), "quantum-aware"),
        ] {
            assert_eq!(spec.build().name(), name);
            assert_eq!(spec.discipline.name(), name);
        }
    }

    #[test]
    fn calculator_reflects_spec_knobs() {
        let spec = PolicySpec::easy()
            .with_weights(PriorityWeights {
                age_per_hour: 100.0,
                size_per_node: 0.0,
                fairshare_per_node_hour: 0.0,
            })
            .with_fairshare_half_life_secs(10.0);
        let calc = spec.calculator();
        assert_eq!(calc.weights().age_per_hour, 100.0);
        assert_eq!(calc.half_life_secs(), 10.0);
    }
}
