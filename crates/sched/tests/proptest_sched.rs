//! Property tests of the batch scheduler: liveness (every job eventually
//! runs), safety (never over-allocates), and determinism, for all three
//! policies.

use hpcqc_cluster::alloc::{AllocRequest, GroupRequest};
use hpcqc_cluster::cluster::{Cluster, ClusterBuilder};
use hpcqc_cluster::gres::GresKind;
use hpcqc_sched::scheduler::{BatchScheduler, PendingJob, Policy};
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::job::JobId;
use proptest::prelude::*;

const NODES: u32 = 32;

fn cluster() -> Cluster {
    ClusterBuilder::new()
        .partition("classical", NODES)
        .partition_with_gres("quantum", 0, GresKind::qpu(), 2)
        .build(SimTime::ZERO)
}

fn job(id: u64, nodes: u32, qpus: u32, walltime_s: u64, submit_s: u64) -> PendingJob {
    let mut request = AllocRequest::new().group(GroupRequest::nodes("classical", nodes));
    if qpus > 0 {
        request = request.group(GroupRequest::gres("quantum", GresKind::qpu(), qpus));
    }
    PendingJob {
        id: JobId::new(id),
        request,
        walltime: SimDuration::from_secs(walltime_s),
        submit: SimTime::from_secs(submit_s),
        user: format!("u{}", id % 3),
        qos_boost: 0.0,
    }
}

/// Drives the scheduler until the queue drains; jobs "run" for their
/// walltime. Returns (start-order, completion count).
fn drain(policy: Policy, jobs: Vec<PendingJob>) -> (Vec<u64>, usize) {
    let mut cluster = cluster();
    let mut sched = BatchScheduler::new(policy);
    let total = jobs.len();
    for j in jobs {
        sched.submit(j, &cluster).expect("job fits machine");
    }
    let mut order = Vec::new();
    let mut running: Vec<(SimTime, hpcqc_cluster::ids::AllocationId)> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut completed = 0;
    // Bounded loop: liveness must hold well within 10×total cycles.
    for _ in 0..(10 * total + 10) {
        for st in sched.try_schedule(&mut cluster, now) {
            order.push(st.job.raw());
            // Look up the walltime via the running set end time: retire
            // after a fixed quantum to keep the driver simple.
            running.push((now + SimDuration::from_secs(300), st.alloc));
        }
        if completed == total {
            break;
        }
        // Advance to the earliest completion.
        running.sort_by_key(|(t, _)| *t);
        if let Some((t, alloc)) = running.first().copied() {
            now = now.max(t);
            cluster.release(alloc, now).expect("release running job");
            sched.finished(alloc, now);
            running.remove(0);
            completed += 1;
        } else if sched.pending_len() > 0 {
            // Nothing running but jobs pending: a scheduling cycle at a
            // later time must make progress.
            now += SimDuration::from_secs(60);
        } else {
            break;
        }
    }
    (order, completed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness: every submitted job eventually starts and completes,
    /// under every policy.
    #[test]
    fn every_job_completes(
        specs in prop::collection::vec((1u32..=NODES, 0u32..=2, 60u64..7_200, 0u64..3_600), 1..25),
    ) {
        for policy in [Policy::Fcfs, Policy::EasyBackfill, Policy::ConservativeBackfill] {
            let jobs: Vec<PendingJob> = specs
                .iter()
                .enumerate()
                .map(|(i, (n, q, w, s))| job(i as u64, *n, *q, *w, *s))
                .collect();
            let (order, completed) = drain(policy, jobs);
            prop_assert_eq!(order.len(), specs.len(), "{} lost starts", policy);
            prop_assert_eq!(completed, specs.len(), "{} lost completions", policy);
        }
    }

    /// Safety: a scheduling cycle never starts jobs exceeding capacity
    /// (enforced by the cluster, but the scheduler must never observe an
    /// allocation failure for jobs it green-lit).
    #[test]
    fn never_overallocates(
        specs in prop::collection::vec((1u32..=NODES, 60u64..7_200), 1..40),
    ) {
        let mut cl = cluster();
        let mut sched = BatchScheduler::new(Policy::EasyBackfill);
        for (i, (n, w)) in specs.iter().enumerate() {
            sched.submit(job(i as u64, *n, 0, *w, 0), &cl).unwrap();
        }
        let started = sched.try_schedule(&mut cl, SimTime::ZERO);
        let total_nodes: u32 = started
            .iter()
            .map(|st| cl.allocation(st.alloc).unwrap().node_count() as u32)
            .sum();
        prop_assert!(total_nodes <= NODES);
        cl.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Determinism: identical submissions produce identical start orders.
    #[test]
    fn start_order_deterministic(
        specs in prop::collection::vec((1u32..=16, 60u64..3_600, 0u64..600), 1..20),
        policy_idx in 0usize..3,
    ) {
        let policy = [Policy::Fcfs, Policy::EasyBackfill, Policy::ConservativeBackfill][policy_idx];
        let mk = || specs
            .iter()
            .enumerate()
            .map(|(i, (n, w, s))| job(i as u64, *n, 0, *w, *s))
            .collect::<Vec<_>>();
        let (a, _) = drain(policy, mk());
        let (b, _) = drain(policy, mk());
        prop_assert_eq!(a, b);
    }

    /// Backfilling strictly dominates FCFS on start count in a single
    /// cycle (it can only start more, never fewer).
    #[test]
    fn backfill_starts_at_least_fcfs(
        specs in prop::collection::vec((1u32..=NODES, 60u64..7_200), 2..30),
    ) {
        let run = |policy: Policy| {
            let mut cl = cluster();
            let mut sched = BatchScheduler::new(policy);
            for (i, (n, w)) in specs.iter().enumerate() {
                sched.submit(job(i as u64, *n, 0, *w, 0), &cl).unwrap();
            }
            sched.try_schedule(&mut cl, SimTime::ZERO).len()
        };
        let fcfs = run(Policy::Fcfs);
        let easy = run(Policy::EasyBackfill);
        prop_assert!(easy >= fcfs, "EASY started {easy} < FCFS {fcfs}");
    }
}
