//! Property tests of the batch scheduler under **all five** queue
//! policies: liveness (every job eventually runs), safety (never
//! over-allocates), determinism, and the policy-specific contracts —
//! EASY never delays the head's shadow reservation, conservative never
//! delays any reservation, and `PriorityBackfill` aging makes starvation
//! impossible (with a contrast test showing EASY *does* starve the same
//! workload).

use hpcqc_cluster::alloc::{AllocRequest, GroupRequest};
use hpcqc_cluster::cluster::{Cluster, ClusterBuilder};
use hpcqc_cluster::gres::GresKind;
use hpcqc_cluster::ids::AllocationId;
use hpcqc_sched::scheduler::{BatchScheduler, PendingJob};
use hpcqc_sched::{Demand, PolicySpec};
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::job::JobId;
use proptest::prelude::*;

const NODES: u32 = 32;

fn all_policies() -> [PolicySpec; 5] {
    [
        PolicySpec::fcfs(),
        PolicySpec::easy(),
        PolicySpec::conservative(),
        PolicySpec::priority_backfill(24.0),
        PolicySpec::quantum_aware(1_000.0),
    ]
}

fn cluster() -> Cluster {
    ClusterBuilder::new()
        .partition("classical", NODES)
        .partition_with_gres("quantum", 0, GresKind::qpu(), 2)
        .build(SimTime::ZERO)
}

fn job(id: u64, nodes: u32, qpus: u32, walltime_s: u64, submit_s: u64) -> PendingJob {
    let mut request = AllocRequest::new().group(GroupRequest::nodes("classical", nodes));
    if qpus > 0 {
        request = request.group(GroupRequest::gres("quantum", GresKind::qpu(), qpus));
    }
    PendingJob {
        id: JobId::new(id),
        request,
        walltime: SimDuration::from_secs(walltime_s),
        submit: SimTime::from_secs(submit_s),
        user: format!("u{}", id % 3),
        qos_boost: 0.0,
    }
}

/// Drives the scheduler until the queue drains; jobs "run" for their
/// walltime. Returns (start-order, completion count).
fn drain(policy: PolicySpec, jobs: Vec<PendingJob>) -> (Vec<u64>, usize) {
    let mut cluster = cluster();
    let mut sched = BatchScheduler::new(policy);
    let total = jobs.len();
    for j in jobs {
        sched.submit(j, &cluster).expect("job fits machine");
    }
    let mut order = Vec::new();
    let mut running: Vec<(SimTime, hpcqc_cluster::ids::AllocationId)> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut completed = 0;
    // Bounded loop: liveness must hold well within 10×total cycles.
    for _ in 0..(10 * total + 10) {
        for st in sched.try_schedule(&mut cluster, now) {
            order.push(st.job.raw());
            // Look up the walltime via the running set end time: retire
            // after a fixed quantum to keep the driver simple.
            running.push((now + SimDuration::from_secs(300), st.alloc));
        }
        if completed == total {
            break;
        }
        // Advance to the earliest completion.
        running.sort_by_key(|(t, _)| *t);
        if let Some((t, alloc)) = running.first().copied() {
            now = now.max(t);
            cluster.release(alloc, now).expect("release running job");
            sched.finished(alloc, now);
            running.remove(0);
            completed += 1;
        } else if sched.pending_len() > 0 {
            // Nothing running but jobs pending: a scheduling cycle at a
            // later time must make progress.
            now += SimDuration::from_secs(60);
        } else {
            break;
        }
    }
    (order, completed)
}

/// The head's earliest feasible start against the running set only (no
/// reservations): EASY's "shadow time".
fn shadow_of(
    sched: &BatchScheduler,
    cluster: &Cluster,
    head: &PendingJob,
    now: SimTime,
) -> SimTime {
    sched.availability_profile(cluster, now).find_slot(
        &Demand::of_request(&head.request),
        head.walltime,
        now,
    )
}

/// Conservative planning replay: in the given queue order, find each
/// job's earliest slot and carve a reservation there, returning
/// (job, planned start) pairs. Mirrors what the policy plans in a cycle.
fn conservative_plan(
    sched: &BatchScheduler,
    cluster: &Cluster,
    now: SimTime,
) -> Vec<(u64, SimTime)> {
    let mut queue: Vec<PendingJob> = sched.pending().to_vec();
    queue.sort_by(|a, b| {
        sched
            .priority_of(b, now)
            .total_cmp(&sched.priority_of(a, now))
            .then(a.submit.cmp(&b.submit))
            .then(a.id.cmp(&b.id))
    });
    let mut profile = sched.availability_profile(cluster, now);
    let mut plan = Vec::with_capacity(queue.len());
    for job in &queue {
        let demand = Demand::of_request(&job.request);
        let slot = profile.find_slot(&demand, job.walltime, now);
        if slot != SimTime::MAX {
            profile.reserve(&demand, slot, job.walltime);
        }
        plan.push((job.id.raw(), slot));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness: every submitted job eventually starts and completes,
    /// under every policy.
    #[test]
    fn every_job_completes(
        specs in prop::collection::vec((1u32..=NODES, 0u32..=2, 60u64..7_200, 0u64..3_600), 1..25),
    ) {
        for policy in all_policies() {
            let jobs: Vec<PendingJob> = specs
                .iter()
                .enumerate()
                .map(|(i, (n, q, w, s))| job(i as u64, *n, *q, *w, *s))
                .collect();
            let (order, completed) = drain(policy, jobs);
            prop_assert_eq!(order.len(), specs.len(), "{} lost starts", policy);
            prop_assert_eq!(completed, specs.len(), "{} lost completions", policy);
        }
    }

    /// Safety: a scheduling cycle never starts jobs exceeding capacity
    /// (enforced by the cluster, but the scheduler must never observe an
    /// allocation failure for jobs it green-lit) — under every policy.
    #[test]
    fn never_overallocates(
        specs in prop::collection::vec((1u32..=NODES, 0u32..=2, 60u64..7_200), 1..40),
    ) {
        for policy in all_policies() {
            let mut cl = cluster();
            let mut sched = BatchScheduler::new(policy);
            for (i, (n, q, w)) in specs.iter().enumerate() {
                sched.submit(job(i as u64, *n, *q, *w, 0), &cl).unwrap();
            }
            let started = sched.try_schedule(&mut cl, SimTime::ZERO);
            let total_nodes: u32 = started
                .iter()
                .map(|st| cl.allocation(st.alloc).unwrap().node_count() as u32)
                .sum();
            prop_assert!(total_nodes <= NODES, "{policy} overallocated");
            cl.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Determinism: identical submissions produce identical start orders,
    /// under every policy.
    #[test]
    fn start_order_deterministic(
        specs in prop::collection::vec((1u32..=16, 60u64..3_600, 0u64..600), 1..20),
        policy_idx in 0usize..5,
    ) {
        let policy = all_policies()[policy_idx];
        let mk = || specs
            .iter()
            .enumerate()
            .map(|(i, (n, w, s))| job(i as u64, *n, 0, *w, *s))
            .collect::<Vec<_>>();
        let (a, _) = drain(policy, mk());
        let (b, _) = drain(policy, mk());
        prop_assert_eq!(a, b);
    }

    /// Backfilling strictly dominates FCFS on start count in a single
    /// cycle (it can only start more, never fewer).
    #[test]
    fn backfill_starts_at_least_fcfs(
        specs in prop::collection::vec((1u32..=NODES, 60u64..7_200), 2..30),
    ) {
        let run = |policy: PolicySpec| {
            let mut cl = cluster();
            let mut sched = BatchScheduler::new(policy);
            for (i, (n, w)) in specs.iter().enumerate() {
                sched.submit(job(i as u64, *n, 0, *w, 0), &cl).unwrap();
            }
            sched.try_schedule(&mut cl, SimTime::ZERO).len()
        };
        let fcfs = run(PolicySpec::fcfs());
        let easy = run(PolicySpec::easy());
        prop_assert!(easy >= fcfs, "EASY started {easy} < FCFS {fcfs}");
    }

    /// EASY's contract: whatever backfills a cycle admits, the head's
    /// shadow (its earliest feasible start against the running set) never
    /// moves later within that cycle.
    #[test]
    fn easy_never_delays_the_heads_shadow(
        fillers in prop::collection::vec((1u32..=12, 300u64..3_600), 1..6),
        head_walltime in 600u64..7_200,
        candidates in prop::collection::vec((1u32..=NODES, 60u64..7_200), 1..20),
    ) {
        let mut cl = cluster();
        let mut sched = BatchScheduler::new(PolicySpec::easy());
        // Fillers occupy the machine from t=0.
        for (i, (n, w)) in fillers.iter().enumerate() {
            sched.submit(job(i as u64, *n, 0, *w, 0), &cl).unwrap();
        }
        sched.try_schedule(&mut cl, SimTime::ZERO);
        // The head wants more than what is left → it must wait. A huge
        // QoS boost pins it to the front whatever arrives later.
        let free = cl.free_nodes("classical").unwrap();
        let mut head = job(1_000, (free + 1).min(NODES), 0, head_walltime, 1);
        head.qos_boost = 1e9;
        let head_copy = head.clone();
        sched.submit(head, &cl).unwrap();
        for (i, (n, w)) in candidates.iter().enumerate() {
            sched.submit(job(2_000 + i as u64, *n, 0, *w, 2), &cl).unwrap();
        }

        let now = SimTime::from_secs(10);
        let shadow_before = shadow_of(&sched, &cl, &head_copy, now);
        let cycle = sched.try_schedule(&mut cl, now);
        if cycle.iter().any(|st| st.job == head_copy.id) {
            return Ok(()); // head started: nothing left to protect
        }
        let shadow_after = shadow_of(&sched, &cl, &head_copy, now);
        prop_assert!(
            shadow_after <= shadow_before,
            "backfills delayed the head's shadow: {shadow_before} -> {shadow_after}"
        );
    }

    /// Conservative's contract: a cycle's starts (plus any lower-priority
    /// arrivals) never delay the planned start of any job left in the
    /// queue.
    #[test]
    fn conservative_never_delays_any_reservation(
        initial in prop::collection::vec((1u32..=NODES, 300u64..7_200), 2..15),
        arrivals in prop::collection::vec((1u32..=NODES, 300u64..7_200), 0..10),
    ) {
        let mut cl = cluster();
        let mut sched = BatchScheduler::new(PolicySpec::conservative());
        for (i, (n, w)) in initial.iter().enumerate() {
            sched.submit(job(i as u64, *n, 0, *w, 0), &cl).unwrap();
        }
        let now = SimTime::from_secs(5);
        let before: std::collections::HashMap<u64, SimTime> =
            conservative_plan(&sched, &cl, now).into_iter().collect();
        // New arrivals rank strictly last (negative boost), as
        // conservative's no-delay guarantee requires.
        for (i, (n, w)) in arrivals.iter().enumerate() {
            let mut late = job(5_000 + i as u64, *n, 0, *w, 5);
            late.qos_boost = -1e9;
            sched.submit(late, &cl).unwrap();
        }
        sched.try_schedule(&mut cl, now);
        for (id, slot) in conservative_plan(&sched, &cl, now) {
            if let Some(planned) = before.get(&id) {
                prop_assert!(
                    slot <= *planned,
                    "job {id}'s reservation slipped {planned} -> {slot}"
                );
            }
        }
    }

    /// `PriorityBackfill` aging: a large, never-boosted job submitted into
    /// a continuous stream of maximally-boosted small jobs still starts —
    /// escalation carries it to the front, the head reservation does the
    /// rest. Starvation is impossible by construction.
    #[test]
    fn priority_backfill_never_starves(
        period in 60u64..600,
        small_nodes in 1u32..=16,
        small_wall in 300u64..1_800,
    ) {
        let start = run_adversarial_stream(
            PolicySpec::priority_backfill(1.0),
            period,
            small_nodes,
            small_wall,
            // Bound: escalation (1 h) + the longest running job + one
            // arrival period + cycle slack.
            3_600 + small_wall + period + 120,
        );
        prop_assert!(
            start.is_some(),
            "32-node job starved past the aging bound (period {period}s, \
             {small_nodes}-node/{small_wall}s stream)"
        );
    }
}

/// Feeds a continuous stream of max-QoS small jobs into the scheduler
/// with one unboosted 32-node job queued at t=0. Jobs run exactly their
/// walltime. Returns the big job's start time if it started within
/// `horizon_secs`.
fn run_adversarial_stream(
    policy: PolicySpec,
    period: u64,
    small_nodes: u32,
    small_wall: u64,
    horizon_secs: u64,
) -> Option<SimTime> {
    let mut cl = cluster();
    let mut sched = BatchScheduler::new(policy);
    let big = JobId::new(0);
    sched.submit(job(0, NODES, 0, 1_800, 0), &cl).unwrap();

    let mut next_id = 1u64;
    let mut next_arrival = 0u64;
    let mut running: Vec<(SimTime, AllocationId)> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut walltimes: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    walltimes.insert(0, 1_800);

    while now.as_secs_f64() as u64 <= horizon_secs {
        // Submit every arrival due by `now`.
        while next_arrival <= now.as_secs_f64() as u64 {
            let mut small = job(next_id, small_nodes, 0, small_wall, next_arrival);
            small.qos_boost = 1e6;
            walltimes.insert(next_id, small_wall);
            sched.submit(small, &cl).unwrap();
            next_id += 1;
            next_arrival += period;
        }
        for st in sched.try_schedule(&mut cl, now) {
            if st.job == big {
                return Some(now);
            }
            let wall = walltimes[&st.job.raw()];
            running.push((now + SimDuration::from_secs(wall), st.alloc));
        }
        // Advance to the next event: an arrival or a completion.
        running.sort_by_key(|(t, _)| *t);
        let next_completion = running.first().map(|(t, _)| *t);
        let next_event = match next_completion {
            Some(t) if t <= SimTime::from_secs(next_arrival) => t,
            _ => SimTime::from_secs(next_arrival),
        };
        now = next_event.max(now + SimDuration::from_secs(1));
        while let Some((t, alloc)) = running.first().copied() {
            if t > now {
                break;
            }
            cl.release(alloc, now).unwrap();
            sched.finished(alloc, now);
            running.remove(0);
        }
    }
    None
}

/// The contrast making `priority_backfill_never_starves` meaningful:
/// under plain EASY the very same adversarial stream starves the 32-node
/// job indefinitely (boosted newcomers always outrank it; it never
/// becomes the protected head), while `PriorityBackfill` starts it right
/// after its aging threshold.
#[test]
fn easy_starves_where_priority_backfill_does_not() {
    let horizon = 40_000; // ~11 hours of simulated stream
    let easy = run_adversarial_stream(PolicySpec::easy(), 100, 8, 1_000, horizon);
    assert_eq!(
        easy, None,
        "EASY unexpectedly started the big job — the stream is not adversarial enough"
    );
    let aged = run_adversarial_stream(PolicySpec::priority_backfill(1.0), 100, 8, 1_000, horizon);
    let started = aged.expect("PriorityBackfill must start the big job");
    assert!(
        started >= SimTime::from_secs(3_600),
        "cannot start before the aging threshold in a saturated machine: {started}"
    );
    assert!(
        started <= SimTime::from_secs(3_600 + 1_000 + 200),
        "escalation + head reservation bound the start: {started}"
    );
}
