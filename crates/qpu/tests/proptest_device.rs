//! Property tests of the QPU device: FIFO ordering, busy-time
//! conservation, and timing-model sanity across all technologies.

use hpcqc_qpu::device::QpuDevice;
use hpcqc_qpu::kernel::Kernel;
use hpcqc_qpu::technology::Technology;
use hpcqc_simcore::rng::SimRng;
use hpcqc_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn tech_strategy() -> impl Strategy<Value = Technology> {
    prop_oneof![
        Just(Technology::Superconducting),
        Just(Technology::TrappedIon),
        Just(Technology::NeutralAtom),
        Just(Technology::Photonic),
        Just(Technology::SpinQubit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Executions never overlap and start times are nondecreasing (FIFO).
    #[test]
    fn fifo_no_overlap(
        tech in tech_strategy(),
        seed in any::<u64>(),
        submits in prop::collection::vec(0u64..10_000, 1..30),
        shots in 1u32..5_000,
    ) {
        let mut device = QpuDevice::new("d", tech, SimRng::seed_from(seed))
            .with_calibration(None);
        let kernel = Kernel::builder("k").qubits(4).shots(shots).build().unwrap();
        let mut submits = submits;
        submits.sort_unstable();
        let mut prev_end = SimTime::ZERO;
        let mut total_service = SimDuration::ZERO;
        for s in submits {
            let exec = device.enqueue(&kernel, SimTime::from_secs(s)).unwrap();
            prop_assert!(exec.start >= SimTime::from_secs(s), "started before submission");
            prop_assert!(exec.start >= prev_end, "executions overlap");
            prop_assert!(exec.end > exec.start, "zero-length execution");
            prev_end = exec.end;
            total_service += exec.service();
        }
        // Busy-time conservation.
        prop_assert_eq!(device.total_busy(), total_service);
        prop_assert!(device.utilization(prev_end) <= 1.0 + 1e-9);
    }

    /// Job duration decomposition: total == calibration + setup + shots.
    #[test]
    fn task_timing_adds_up(tech in tech_strategy(), seed in any::<u64>(), shots in 1u32..100_000) {
        let timing = tech.timing();
        let mut rng = SimRng::seed_from(seed);
        let t = timing.sample_task(shots, &mut rng);
        prop_assert_eq!(t.total(), t.register_calibration + t.setup + t.shots_time);
        // Only neutral atoms pay register calibration.
        if tech != Technology::NeutralAtom {
            prop_assert_eq!(t.register_calibration, SimDuration::ZERO);
        }
    }

    /// More shots never make a sampled job shorter (same RNG stream).
    #[test]
    fn shots_monotone(tech in tech_strategy(), seed in any::<u64>()) {
        let timing = tech.timing();
        let few = timing.sample_task(100, &mut SimRng::seed_from(seed)).total();
        let many = timing.sample_task(100_000, &mut SimRng::seed_from(seed)).total();
        prop_assert!(many >= few, "100k shots ({many}) shorter than 100 ({few})");
    }

    /// Device behaviour is reproducible from the seed.
    #[test]
    fn device_deterministic(tech in tech_strategy(), seed in any::<u64>()) {
        let kernel = Kernel::sampling(1_000);
        let run = || {
            let mut d = QpuDevice::new("d", tech, SimRng::seed_from(seed));
            (0..5)
                .map(|i| d.enqueue(&kernel, SimTime::from_secs(i * 10)).unwrap().end)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Oversized kernels are rejected without mutating device state.
    #[test]
    fn oversized_kernel_rejected(tech in tech_strategy(), extra in 1u32..64) {
        let mut device = QpuDevice::new("d", tech, SimRng::seed_from(1));
        let kernel = Kernel::builder("big")
            .qubits(device.qubits() + extra)
            .build()
            .unwrap();
        prop_assert!(device.enqueue(&kernel, SimTime::ZERO).is_err());
        prop_assert_eq!(device.tasks_executed(), 0);
        prop_assert_eq!(device.total_busy(), SimDuration::ZERO);
    }
}
