//! A physical QPU device with FIFO execution semantics.
//!
//! The device is a deterministic state machine driven by the simulation:
//! tasks submitted with [`QpuDevice::enqueue`] run in submission order, one
//! at a time (current QPUs do not multiplex circuits), with periodic
//! recalibration windows injected per the device's [`CalibrationPolicy`].
//!
//! The device is the *shared* resource behind the paper's Virtual-QPU
//! proposal: N VQPU gres units all funnel into one `QpuDevice`, and the
//! interleaving delay the paper bounds by the VQPU count emerges from this
//! FIFO.

use crate::error::QpuError;
use crate::kernel::Kernel;
use crate::technology::Technology;
use crate::timing::{CalibrationPolicy, TaskTiming, TimingModel};
use hpcqc_simcore::rng::SimRng;
use hpcqc_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The record of one task execution on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskExecution {
    /// When the task was submitted to the device queue.
    pub submitted: SimTime,
    /// When it started executing (after queueing and any recalibration).
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
    /// Device recalibration time that delayed this task (not charged as
    /// execution).
    pub recalibration: SimDuration,
    /// The sampled timing decomposition.
    pub timing: TaskTiming,
}

impl TaskExecution {
    /// Time spent waiting in the device queue (including recalibration).
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.submitted)
    }

    /// Time spent executing on the hardware.
    pub fn service(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Total turnaround from submission to completion.
    pub fn turnaround(&self) -> SimDuration {
        self.end.since(self.submitted)
    }
}

/// A physical quantum processing unit.
///
/// # Examples
///
/// ```
/// use hpcqc_qpu::{Kernel, QpuDevice, Technology};
/// use hpcqc_simcore::{SimRng, SimTime};
///
/// let mut qpu = QpuDevice::new("sc-1", Technology::Superconducting, SimRng::seed_from(7));
/// let kernel = Kernel::sampling(1_000);
/// let exec = qpu.enqueue(&kernel, SimTime::ZERO)?;
/// assert!(exec.end > exec.start);
/// # Ok::<(), hpcqc_qpu::QpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QpuDevice {
    name: String,
    technology: Technology,
    qubits: u32,
    timing: TimingModel,
    calibration: Option<CalibrationPolicy>,
    rng: SimRng,
    created_at: SimTime,
    busy_until: SimTime,
    last_calibration: SimTime,
    total_busy: SimDuration,
    total_recalibration: SimDuration,
    tasks_executed: u64,
}

impl QpuDevice {
    /// Creates a device with the technology's default timing, qubit count
    /// and a daily calibration cadence.
    pub fn new(name: impl Into<String>, technology: Technology, rng: SimRng) -> Self {
        QpuDevice {
            name: name.into(),
            technology,
            qubits: technology.typical_qubits(),
            timing: technology.timing(),
            calibration: Some(CalibrationPolicy::daily()),
            rng,
            created_at: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            last_calibration: SimTime::ZERO,
            total_busy: SimDuration::ZERO,
            total_recalibration: SimDuration::ZERO,
            tasks_executed: 0,
        }
    }

    /// Overrides the qubit count.
    pub fn with_qubits(mut self, qubits: u32) -> Self {
        self.qubits = qubits;
        self
    }

    /// Overrides the timing model.
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides (or disables, with `None`) periodic recalibration.
    pub fn with_calibration(mut self, calibration: Option<CalibrationPolicy>) -> Self {
        self.calibration = calibration;
        self
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// The timing model in force.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The earliest instant a new submission could start executing.
    pub fn next_free(&self) -> SimTime {
        self.busy_until
    }

    /// How long a task submitted at `now` would wait before starting
    /// (queue backlog only; excludes any recalibration that may trigger).
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// `true` if a recalibration window would trigger for a task the
    /// device next touches at `at` — the same period test
    /// [`QpuDevice::enqueue`] applies, but without consuming RNG (the
    /// window length is sampled only when a task actually arrives).
    /// Routing policies use this to steer around devices about to
    /// recalibrate.
    pub fn calibration_due(&self, at: SimTime) -> bool {
        self.calibration
            .as_ref()
            .is_some_and(|pol| at.saturating_since(self.last_calibration) >= pol.period())
    }

    /// Submits a kernel at `submitted`; it executes after the current
    /// backlog (FIFO) plus any due recalibration window.
    ///
    /// # Errors
    ///
    /// Returns [`QpuError::KernelTooLarge`] if the kernel needs more qubits
    /// than the device has.
    ///
    /// # Panics
    ///
    /// Panics if `submitted` precedes a previously submitted task's
    /// submission processing (the caller must submit in nondecreasing time
    /// order, which an event-driven simulation does naturally).
    pub fn enqueue(
        &mut self,
        kernel: &Kernel,
        submitted: SimTime,
    ) -> Result<TaskExecution, QpuError> {
        if kernel.qubits() > self.qubits {
            return Err(QpuError::KernelTooLarge {
                requested: kernel.qubits(),
                available: self.qubits,
            });
        }
        let queue_start = submitted.max(self.busy_until);
        // Recalibration triggers when the device would next touch a task.
        let recalibration = self
            .calibration
            .as_ref()
            .and_then(|pol| pol.due(self.last_calibration, queue_start, &mut self.rng))
            .unwrap_or(SimDuration::ZERO);
        if !recalibration.is_zero() {
            self.last_calibration = queue_start + recalibration;
            self.total_recalibration += recalibration;
        }
        let start = queue_start + recalibration;
        let timing = self.timing.sample_task(kernel.shots(), &mut self.rng);
        let end = start + timing.total();
        self.busy_until = end;
        self.total_busy += timing.total();
        self.tasks_executed += 1;
        Ok(TaskExecution {
            submitted,
            start,
            end,
            recalibration,
            timing,
        })
    }

    /// Number of tasks executed so far.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed
    }

    /// Total hardware-busy time accumulated (task execution only).
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Total time spent in recalibration windows.
    pub fn total_recalibration(&self) -> SimDuration {
        self.total_recalibration
    }

    /// Fraction of `[creation, until]` the device spent executing tasks.
    ///
    /// Note: `busy_until` may exceed `until` if work is still queued; the
    /// numerator counts all *scheduled* busy time, so pass an `until` at or
    /// after the last completion for exact figures.
    pub fn utilization(&self, until: SimTime) -> f64 {
        let span = until.saturating_since(self.created_at).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.total_busy.as_secs_f64() / span).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_simcore::dist::Dist;

    fn fixed_device() -> QpuDevice {
        QpuDevice::new("test", Technology::Superconducting, SimRng::seed_from(1))
            .with_timing(TimingModel::new(Dist::constant(0.01), Dist::constant(2.0)))
            .with_calibration(None)
            .with_qubits(16)
    }

    #[test]
    fn fifo_execution_order() {
        let mut qpu = fixed_device();
        let k = Kernel::sampling(100); // 2 s setup + 1 s shots = 3 s
        let a = qpu.enqueue(&k, SimTime::ZERO).unwrap();
        let b = qpu.enqueue(&k, SimTime::ZERO).unwrap();
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::from_secs(3));
        assert_eq!(
            b.start,
            SimTime::from_secs(3),
            "second task waits for the first"
        );
        assert_eq!(b.wait(), SimDuration::from_secs(3));
    }

    #[test]
    fn idle_device_starts_immediately() {
        let mut qpu = fixed_device();
        let k = Kernel::sampling(100);
        let a = qpu.enqueue(&k, SimTime::from_secs(100)).unwrap();
        assert_eq!(a.start, SimTime::from_secs(100));
        assert_eq!(a.wait(), SimDuration::ZERO);
    }

    #[test]
    fn too_large_kernel_rejected() {
        let mut qpu = fixed_device();
        let k = Kernel::builder("big").qubits(64).build().unwrap();
        assert!(matches!(
            qpu.enqueue(&k, SimTime::ZERO),
            Err(QpuError::KernelTooLarge {
                requested: 64,
                available: 16
            })
        ));
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut qpu = fixed_device();
        let k = Kernel::sampling(100); // 3 s per task
        qpu.enqueue(&k, SimTime::ZERO).unwrap();
        // 3 busy seconds over a 30 s window.
        assert!((qpu.utilization(SimTime::from_secs(30)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn recalibration_delays_but_not_busy() {
        let pol = CalibrationPolicy::new(SimDuration::from_secs(10), Dist::constant(5.0));
        let mut qpu = fixed_device().with_calibration(Some(pol));
        let k = Kernel::sampling(100);
        // At t=0 a calibration is "due" (last at t=0, elapsed 0 < 10? no).
        let a = qpu.enqueue(&k, SimTime::ZERO).unwrap();
        assert_eq!(a.recalibration, SimDuration::ZERO);
        // At t=20 > period, the next task pays the 5 s calibration first.
        let b = qpu.enqueue(&k, SimTime::from_secs(20)).unwrap();
        assert_eq!(b.recalibration, SimDuration::from_secs(5));
        assert_eq!(b.start, SimTime::from_secs(25));
        assert_eq!(qpu.total_recalibration(), SimDuration::from_secs(5));
    }

    #[test]
    fn calibration_due_mirrors_enqueue_without_rng() {
        let pol = CalibrationPolicy::new(SimDuration::from_secs(10), Dist::constant(5.0));
        let mut qpu = fixed_device().with_calibration(Some(pol));
        assert!(!qpu.calibration_due(SimTime::ZERO));
        assert!(qpu.calibration_due(SimTime::from_secs(10)));
        let k = Kernel::sampling(100);
        qpu.enqueue(&k, SimTime::from_secs(20)).unwrap();
        // The enqueue recalibrated at t=20..25; the clock restarts there.
        assert!(!qpu.calibration_due(SimTime::from_secs(30)));
        assert!(qpu.calibration_due(SimTime::from_secs(35)));
        assert!(
            !fixed_device().calibration_due(SimTime::from_secs(360_000)),
            "no policy, never due"
        );
    }

    #[test]
    fn backlog_reports_queue_depth_in_time() {
        let mut qpu = fixed_device();
        let k = Kernel::sampling(100);
        qpu.enqueue(&k, SimTime::ZERO).unwrap();
        qpu.enqueue(&k, SimTime::ZERO).unwrap();
        assert_eq!(qpu.backlog(SimTime::ZERO), SimDuration::from_secs(6));
        assert_eq!(qpu.backlog(SimTime::from_secs(100)), SimDuration::ZERO);
    }

    #[test]
    fn counters_accumulate() {
        let mut qpu = fixed_device();
        let k = Kernel::sampling(100);
        for _ in 0..4 {
            qpu.enqueue(&k, SimTime::ZERO).unwrap();
        }
        assert_eq!(qpu.tasks_executed(), 4);
        assert_eq!(qpu.total_busy(), SimDuration::from_secs(12));
    }

    #[test]
    fn default_device_uses_technology_profile() {
        let qpu = QpuDevice::new("na", Technology::NeutralAtom, SimRng::seed_from(2));
        assert_eq!(qpu.qubits(), Technology::NeutralAtom.typical_qubits());
        assert!(qpu.timing().register_calibration().is_some());
    }
}
