//! Error types for QPU operations.

use std::error::Error;
use std::fmt;

/// Why a quantum task could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpuError {
    /// The kernel needs more qubits than the device has.
    KernelTooLarge {
        /// Qubits requested by the kernel.
        requested: u32,
        /// Qubits available on the device.
        available: u32,
    },
    /// The device is offline (maintenance or failure window).
    DeviceOffline {
        /// Human-readable reason.
        reason: String,
    },
    /// A kernel parameter was invalid (zero shots, zero qubits…).
    InvalidKernel {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for QpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpuError::KernelTooLarge {
                requested,
                available,
            } => {
                write!(f, "kernel needs {requested} qubits, device has {available}")
            }
            QpuError::DeviceOffline { reason } => write!(f, "device offline: {reason}"),
            QpuError::InvalidKernel { reason } => write!(f, "invalid kernel: {reason}"),
        }
    }
}

impl Error for QpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = QpuError::KernelTooLarge {
            requested: 40,
            available: 20,
        };
        assert_eq!(e.to_string(), "kernel needs 40 qubits, device has 20");
        assert!(QpuError::DeviceOffline {
            reason: "cal".into()
        }
        .to_string()
        .contains("offline"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<QpuError>();
    }
}
