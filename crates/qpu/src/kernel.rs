//! Quantum kernels: the unit of work submitted to a QPU.
//!
//! A kernel is what the paper calls a *circuit* or *quantum task*: a
//! parametrized circuit plus a shot count. The scheduler never looks inside
//! the circuit — only its resource shape (qubits) and the execution time its
//! technology model implies.

use crate::error::QpuError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum kernel: circuit shape plus shot count.
///
/// # Examples
///
/// ```
/// use hpcqc_qpu::kernel::Kernel;
///
/// let k = Kernel::builder("vqe-ansatz")
///     .qubits(12)
///     .depth(64)
///     .shots(1_000)
///     .build()
///     .unwrap();
/// assert_eq!(k.shots(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    qubits: u32,
    depth: u32,
    shots: u32,
}

impl Kernel {
    /// Starts building a kernel with the given name.
    pub fn builder(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            qubits: 4,
            depth: 16,
            shots: 1_000,
        }
    }

    /// A small sampling kernel with the given shot count (handy default).
    pub fn sampling(shots: u32) -> Kernel {
        Kernel {
            name: "sampling".into(),
            qubits: 8,
            depth: 32,
            shots,
        }
    }

    /// The kernel's name (for traces and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits the circuit touches.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// Two-qubit-gate depth of the circuit (drives per-shot duration).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of measurement shots requested.
    pub fn shots(&self) -> u32 {
        self.shots
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[q={}, d={}, shots={}]",
            self.name, self.qubits, self.depth, self.shots
        )
    }
}

/// Builder for [`Kernel`].
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    qubits: u32,
    depth: u32,
    shots: u32,
}

impl KernelBuilder {
    /// Sets the qubit count (default 4).
    pub fn qubits(mut self, qubits: u32) -> Self {
        self.qubits = qubits;
        self
    }

    /// Sets the circuit depth (default 16).
    pub fn depth(mut self, depth: u32) -> Self {
        self.depth = depth;
        self
    }

    /// Sets the shot count (default 1000).
    pub fn shots(mut self, shots: u32) -> Self {
        self.shots = shots;
        self
    }

    /// Validates and builds the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`QpuError::InvalidKernel`] if qubits, depth or shots are zero.
    pub fn build(self) -> Result<Kernel, QpuError> {
        if self.qubits == 0 {
            return Err(QpuError::InvalidKernel {
                reason: "zero qubits".into(),
            });
        }
        if self.depth == 0 {
            return Err(QpuError::InvalidKernel {
                reason: "zero depth".into(),
            });
        }
        if self.shots == 0 {
            return Err(QpuError::InvalidKernel {
                reason: "zero shots".into(),
            });
        }
        Ok(Kernel {
            name: self.name,
            qubits: self.qubits,
            depth: self.depth,
            shots: self.shots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let k = Kernel::builder("k").build().unwrap();
        assert_eq!((k.qubits(), k.depth(), k.shots()), (4, 16, 1000));
        let k = Kernel::builder("k")
            .qubits(20)
            .depth(100)
            .shots(512)
            .build()
            .unwrap();
        assert_eq!((k.qubits(), k.depth(), k.shots()), (20, 100, 512));
    }

    #[test]
    fn zero_fields_rejected() {
        assert!(Kernel::builder("k").qubits(0).build().is_err());
        assert!(Kernel::builder("k").depth(0).build().is_err());
        assert!(Kernel::builder("k").shots(0).build().is_err());
    }

    #[test]
    fn display_shows_shape() {
        let k = Kernel::builder("bell")
            .qubits(2)
            .depth(2)
            .shots(100)
            .build()
            .unwrap();
        assert_eq!(k.to_string(), "bell[q=2, d=2, shots=100]");
    }

    #[test]
    fn serde_roundtrip() {
        let k = Kernel::sampling(42);
        let json = serde_json::to_string(&k).unwrap();
        assert_eq!(serde_json::from_str::<Kernel>(&json).unwrap(), k);
    }
}
