//! Timing models: how long a quantum task takes on a given technology.
//!
//! A task's wall-clock time decomposes into
//!
//! ```text
//! job = register_calibration (neutral atoms, per register geometry)
//!     + task_setup           (compile, load, arm electronics)
//!     + shots × shot_time
//! ```
//!
//! plus, at device level, periodic recalibration windows modelled by
//! [`CalibrationPolicy`] (drift forces every NISQ device to recalibrate on a
//! cadence; during the window the device serves no tasks).

use hpcqc_simcore::dist::Dist;
use hpcqc_simcore::rng::SimRng;
use hpcqc_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-technology task timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    shot: Dist,
    task_setup: Dist,
    register_calibration: Option<Dist>,
}

impl TimingModel {
    /// Creates a model from per-shot and per-task-setup distributions
    /// (both in seconds).
    pub fn new(shot: Dist, task_setup: Dist) -> Self {
        TimingModel {
            shot,
            task_setup,
            register_calibration: None,
        }
    }

    /// Adds a per-job register-geometry calibration cost (neutral atoms).
    pub fn with_register_calibration(mut self, dist: Dist) -> Self {
        self.register_calibration = Some(dist);
        self
    }

    /// The per-shot duration distribution.
    pub fn shot(&self) -> &Dist {
        &self.shot
    }

    /// The per-task setup distribution.
    pub fn task_setup(&self) -> &Dist {
        &self.task_setup
    }

    /// The register-calibration distribution, if the technology needs one.
    pub fn register_calibration(&self) -> Option<&Dist> {
        self.register_calibration.as_ref()
    }

    /// Samples a full-job duration in seconds for `shots` shots.
    ///
    /// Shots within one task share a single sampled per-shot time — shot
    /// durations within a task are dominated by the same circuit and
    /// settings, so they are strongly correlated, and sampling 10⁶ shots
    /// individually would be pointless work.
    pub fn sample_job_secs(&self, shots: u32, rng: &mut SimRng) -> f64 {
        let cal = self
            .register_calibration
            .as_ref()
            .map_or(0.0, |d| d.sample(rng));
        let setup = self.task_setup.sample(rng);
        let per_shot = self.shot.sample(rng);
        cal + setup + per_shot * f64::from(shots)
    }

    /// Samples the decomposed timing of one task.
    pub fn sample_task(&self, shots: u32, rng: &mut SimRng) -> TaskTiming {
        let register_calibration = SimDuration::from_secs_f64(
            self.register_calibration
                .as_ref()
                .map_or(0.0, |d| d.sample(rng)),
        );
        let setup = SimDuration::from_secs_f64(self.task_setup.sample(rng));
        let shots_time = SimDuration::from_secs_f64(self.shot.sample(rng) * f64::from(shots));
        TaskTiming {
            register_calibration,
            setup,
            shots_time,
        }
    }

    /// Expected job duration in seconds (analytic, for capacity planning).
    pub fn mean_job_secs(&self, shots: u32) -> f64 {
        self.register_calibration.as_ref().map_or(0.0, Dist::mean)
            + self.task_setup.mean()
            + self.shot.mean() * f64::from(shots)
    }
}

/// The sampled components of one task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTiming {
    /// Register-geometry calibration charged to this job (zero for most
    /// technologies).
    pub register_calibration: SimDuration,
    /// Compile/load/arm time.
    pub setup: SimDuration,
    /// Total shot execution time.
    pub shots_time: SimDuration,
}

impl TaskTiming {
    /// Total wall-clock duration of the task on the device.
    pub fn total(&self) -> SimDuration {
        self.register_calibration + self.setup + self.shots_time
    }
}

/// Periodic device recalibration: every `period`, the device spends a
/// sampled `duration` unavailable.
///
/// NISQ devices drift; vendors publish calibration cadences from tens of
/// minutes to a day. The scheduler sees this as planned unavailability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPolicy {
    period: SimDuration,
    duration: Dist,
}

impl CalibrationPolicy {
    /// Creates a policy recalibrating every `period` for `duration` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration, duration: Dist) -> Self {
        assert!(
            !period.is_zero(),
            "CalibrationPolicy: period must be positive"
        );
        CalibrationPolicy { period, duration }
    }

    /// Daily recalibration of roughly half an hour — a common vendor cadence.
    pub fn daily() -> Self {
        CalibrationPolicy::new(
            SimDuration::from_hours(24),
            Dist::log_normal_mean_cv(1_800.0, 0.2).clamped(600.0, 5_400.0),
        )
    }

    /// The recalibration period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// If a recalibration is due at `now` given the `last` calibration
    /// instant, samples its duration.
    pub fn due(&self, last: SimTime, now: SimTime, rng: &mut SimRng) -> Option<SimDuration> {
        if now.saturating_since(last) >= self.period {
            Some(self.duration.sample_duration(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::new(Dist::constant(0.01), Dist::constant(2.0))
    }

    #[test]
    fn job_decomposition_adds_up() {
        let mut rng = SimRng::seed_from(1);
        let t = model().sample_task(100, &mut rng);
        assert_eq!(t.register_calibration, SimDuration::ZERO);
        assert_eq!(t.setup, SimDuration::from_secs(2));
        assert_eq!(t.shots_time, SimDuration::from_secs(1));
        assert_eq!(t.total(), SimDuration::from_secs(3));
    }

    #[test]
    fn register_calibration_included() {
        let m = model().with_register_calibration(Dist::constant(600.0));
        let mut rng = SimRng::seed_from(2);
        let t = m.sample_task(100, &mut rng);
        assert_eq!(t.register_calibration, SimDuration::from_secs(600));
        assert_eq!(t.total(), SimDuration::from_secs(603));
        assert_eq!(m.mean_job_secs(100), 603.0);
    }

    #[test]
    fn sample_job_secs_matches_task() {
        let m = model();
        let mut rng = SimRng::seed_from(3);
        assert!((m.sample_job_secs(100, &mut rng) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shots_scale_linearly() {
        let m = model();
        assert_eq!(m.mean_job_secs(0), 2.0);
        assert_eq!(m.mean_job_secs(1_000), 12.0);
    }

    #[test]
    fn calibration_due_only_after_period() {
        let pol = CalibrationPolicy::new(SimDuration::from_hours(1), Dist::constant(60.0));
        let mut rng = SimRng::seed_from(4);
        assert!(pol
            .due(SimTime::ZERO, SimTime::from_secs(1_800), &mut rng)
            .is_none());
        let d = pol.due(SimTime::ZERO, SimTime::from_secs(3_600), &mut rng);
        assert_eq!(d, Some(SimDuration::from_secs(60)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = CalibrationPolicy::new(SimDuration::ZERO, Dist::constant(1.0));
    }
}
