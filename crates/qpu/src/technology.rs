//! Quantum hardware technologies and their characteristic time scales.
//!
//! This module encodes Fig. 1 of the paper — *"Time scales of relevant
//! quantum jobs/shots"* — as executable timing models. The paper's central
//! observation is that **quantum kernel durations are dictated by the QPU
//! technology, not by algorithmic complexity**: a superconducting task runs
//! in ~10 s while a neutral-atom job (which must calibrate an arbitrary
//! register geometry first) can exceed 30 min. That two-orders-of-magnitude
//! spread is what breaks naïve co-scheduling.
//!
//! Parameter provenance: the paper's Fig. 1 ranges plus the per-technology
//! physics it summarizes (gate/readout cadence for superconducting circuits,
//! ion shuttling for trapped ions, MOT reload and register-geometry
//! calibration for neutral atoms). Values are *ranges*, sampled per shot /
//! per task, because the experiments only depend on order-of-magnitude
//! contrasts, not vendor-exact constants.

use crate::timing::TimingModel;
use hpcqc_simcore::dist::Dist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum hardware technology, with Fig. 1-calibrated timing defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Technology {
    /// Transmon-style superconducting circuits: µs-scale shots, ~10 s tasks.
    Superconducting,
    /// Trapped ions: ms-scale shots, minutes-scale tasks.
    TrappedIon,
    /// Neutral atoms: seconds-scale shots and ≥ 30 min jobs once the
    /// register-geometry calibration the paper highlights is included.
    NeutralAtom,
    /// Photonic processors: very fast shots, seconds-scale tasks.
    Photonic,
    /// Semiconductor spin qubits: ms-scale shots, sub-minute tasks.
    SpinQubit,
}

impl Technology {
    /// All modelled technologies, in Fig. 1 display order.
    pub const ALL: [Technology; 5] = [
        Technology::Superconducting,
        Technology::TrappedIon,
        Technology::NeutralAtom,
        Technology::Photonic,
        Technology::SpinQubit,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Technology::Superconducting => "superconducting",
            Technology::TrappedIon => "trapped-ion",
            Technology::NeutralAtom => "neutral-atom",
            Technology::Photonic => "photonic",
            Technology::SpinQubit => "spin-qubit",
        }
    }

    /// The default timing model for this technology (Fig. 1 calibration).
    ///
    /// | technology      | shot        | task setup | register cal. | typical job |
    /// |-----------------|-------------|------------|---------------|-------------|
    /// | superconducting | 10 µs–1 ms  | ~2 s       | —             | ~10 s       |
    /// | trapped-ion     | 5–50 ms     | ~10 s      | —             | ~1–2 min    |
    /// | neutral-atom    | 0.5–5 s     | ~30 s      | 10–40 min     | > 30 min    |
    /// | photonic        | 1–100 µs    | ~1 s       | —             | ~a few s    |
    /// | spin-qubit      | 1–10 ms     | ~5 s       | —             | ~20 s       |
    pub fn timing(self) -> TimingModel {
        match self {
            Technology::Superconducting => TimingModel::new(
                // Per shot: gate sequence + µs-scale readout + reset.
                Dist::log_normal_mean_cv(200e-6, 0.8).clamped(10e-6, 1e-3),
                // Per task: compile, load, arm control electronics.
                Dist::log_normal_mean_cv(2.0, 0.3).clamped(0.5, 8.0),
            ),
            Technology::TrappedIon => TimingModel::new(
                Dist::log_normal_mean_cv(20e-3, 0.5).clamped(5e-3, 50e-3),
                Dist::log_normal_mean_cv(10.0, 0.3).clamped(2.0, 30.0),
            ),
            Technology::NeutralAtom => TimingModel::new(
                // Per shot: MOT reload, rearrangement, Rydberg pulse, imaging.
                Dist::log_normal_mean_cv(2.0, 0.4).clamped(0.5, 5.0),
                Dist::log_normal_mean_cv(30.0, 0.3).clamped(10.0, 90.0),
            )
            // The paper: "Jobs on neutral atoms machines include the
            // calibration time for an arbitrary register geometry."
            .with_register_calibration(
                Dist::log_normal_mean_cv(1_500.0, 0.3).clamped(600.0, 2_400.0),
            ),
            Technology::Photonic => TimingModel::new(
                Dist::log_normal_mean_cv(20e-6, 0.6).clamped(1e-6, 100e-6),
                Dist::log_normal_mean_cv(1.0, 0.3).clamped(0.2, 4.0),
            ),
            Technology::SpinQubit => TimingModel::new(
                Dist::log_normal_mean_cv(4e-3, 0.5).clamped(1e-3, 10e-3),
                Dist::log_normal_mean_cv(5.0, 0.3).clamped(1.0, 15.0),
            ),
        }
    }

    /// Typical qubit count of a current (NISQ-era) device of this kind.
    pub fn typical_qubits(self) -> u32 {
        match self {
            Technology::Superconducting => 127,
            Technology::TrappedIon => 32,
            Technology::NeutralAtom => 256,
            Technology::Photonic => 216,
            Technology::SpinQubit => 12,
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the Fig. 1 reproduction: per-technology time scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeScaleRow {
    /// The technology.
    pub technology: Technology,
    /// 5th percentile of a single-shot duration, seconds.
    pub shot_p05: f64,
    /// Median single-shot duration, seconds.
    pub shot_p50: f64,
    /// 95th percentile of a single-shot duration, seconds.
    pub shot_p95: f64,
    /// 5th percentile of a full job (setup + calibration + shots), seconds.
    pub job_p05: f64,
    /// Median full-job duration, seconds.
    pub job_p50: f64,
    /// 95th percentile of a full job, seconds.
    pub job_p95: f64,
}

/// Regenerates the data behind Fig. 1: samples shot and job durations for
/// every technology and reports their quantiles.
///
/// `shots_per_job` is the shot count of the reference kernel (the paper's
/// examples use ~10³) and `samples` the Monte-Carlo sample count per row.
///
/// # Examples
///
/// ```
/// use hpcqc_qpu::technology::{fig1_rows, Technology};
///
/// let rows = fig1_rows(1_000, 200, 7);
/// let sc = rows.iter().find(|r| r.technology == Technology::Superconducting).unwrap();
/// let na = rows.iter().find(|r| r.technology == Technology::NeutralAtom).unwrap();
/// // The paper's contrast: superconducting ~10 s vs neutral atom > 30 min.
/// assert!(sc.job_p50 < 60.0);
/// assert!(na.job_p50 > 30.0 * 60.0);
/// ```
pub fn fig1_rows(shots_per_job: u32, samples: u32, seed: u64) -> Vec<TimeScaleRow> {
    use hpcqc_simcore::rng::SimRng;
    use hpcqc_simcore::stats::Samples;

    let root = SimRng::seed_from(seed);
    Technology::ALL
        .iter()
        .map(|&tech| {
            let mut rng = root.fork(tech.name());
            let timing = tech.timing();
            let mut shot = Samples::new();
            let mut job = Samples::new();
            for _ in 0..samples {
                shot.record(timing.shot().sample(&mut rng));
                job.record(timing.sample_job_secs(shots_per_job, &mut rng));
            }
            // An empty sample set (samples == 0) degrades to zeroed rows
            // rather than panicking; callers always pass samples >= 1.
            let q = |s: &mut Samples, p: f64| s.quantile(p).unwrap_or_default();
            TimeScaleRow {
                technology: tech,
                shot_p05: q(&mut shot, 0.05),
                shot_p50: q(&mut shot, 0.50),
                shot_p95: q(&mut shot, 0.95),
                job_p05: q(&mut job, 0.05),
                job_p50: q(&mut job, 0.50),
                job_p95: q(&mut job, 0.95),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_simcore::rng::SimRng;

    #[test]
    fn names_and_display() {
        assert_eq!(Technology::Superconducting.to_string(), "superconducting");
        assert_eq!(Technology::ALL.len(), 5);
    }

    #[test]
    fn superconducting_task_near_ten_seconds() {
        // §3 of the paper: "for a superconducting QPU … each quantum task
        // will last ∼10 s".
        let timing = Technology::Superconducting.timing();
        let mut rng = SimRng::seed_from(1);
        let mean: f64 = (0..200)
            .map(|_| timing.sample_job_secs(1_000, &mut rng))
            .sum::<f64>()
            / 200.0;
        assert!(
            (1.0..30.0).contains(&mean),
            "superconducting job mean {mean} s not ~10 s"
        );
    }

    #[test]
    fn neutral_atom_job_exceeds_thirty_minutes() {
        // §3: "a quantum task could easily last more than 30 min".
        let timing = Technology::NeutralAtom.timing();
        let mut rng = SimRng::seed_from(2);
        let mean: f64 = (0..100)
            .map(|_| timing.sample_job_secs(1_000, &mut rng))
            .sum::<f64>()
            / 100.0;
        assert!(
            mean > 30.0 * 60.0,
            "neutral-atom job mean {mean} s is below 30 min"
        );
    }

    #[test]
    fn shot_scales_span_orders_of_magnitude() {
        let rows = fig1_rows(1_000, 200, 3);
        let sc = rows
            .iter()
            .find(|r| r.technology == Technology::Superconducting)
            .unwrap();
        let na = rows
            .iter()
            .find(|r| r.technology == Technology::NeutralAtom)
            .unwrap();
        assert!(
            na.shot_p50 / sc.shot_p50 > 1_000.0,
            "expected ≥3 orders of magnitude between neutral-atom and superconducting shots"
        );
    }

    #[test]
    fn fig1_rows_are_deterministic() {
        assert_eq!(fig1_rows(1_000, 50, 9), fig1_rows(1_000, 50, 9));
    }

    #[test]
    fn quantiles_ordered() {
        for row in fig1_rows(500, 100, 4) {
            assert!(
                row.shot_p05 <= row.shot_p50 && row.shot_p50 <= row.shot_p95,
                "{row:?}"
            );
            assert!(
                row.job_p05 <= row.job_p50 && row.job_p50 <= row.job_p95,
                "{row:?}"
            );
        }
    }

    #[test]
    fn typical_qubits_positive() {
        for t in Technology::ALL {
            assert!(t.typical_qubits() > 0);
        }
    }
}
