//! # hpcqc-qpu
//!
//! Quantum-device models for the `hpcqc` hybrid HPC–QC scheduling
//! simulator. This crate is the *substrate substitution* for the real
//! quantum hardware the paper discusses: scheduling behaviour depends only
//! on the devices' time scales and queueing discipline, which are modelled
//! explicitly here.
//!
//! * [`technology`] — the five modelled hardware families and the Fig. 1
//!   time-scale reproduction ([`fig1_rows`]);
//! * [`timing`] — per-task timing decomposition (register calibration +
//!   setup + shots) and periodic device recalibration;
//! * [`kernel`] — the unit of quantum work (circuit shape + shots);
//! * [`device`] — the FIFO device state machine shared by all strategies;
//! * [`remote`] — the REST/cloud access-model overheads of §3.
//!
//! ## The paper's Fig. 1, as code
//!
//! ```
//! use hpcqc_qpu::{fig1_rows, Technology};
//!
//! for row in fig1_rows(1_000, 100, 42) {
//!     println!(
//!         "{:16} shot ~{:.2e}s  job ~{:.1}s",
//!         row.technology.name(), row.shot_p50, row.job_p50
//!     );
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod error;
pub mod kernel;
pub mod remote;
pub mod technology;
pub mod timing;

pub use device::{QpuDevice, TaskExecution};
pub use error::QpuError;
pub use kernel::{Kernel, KernelBuilder};
pub use remote::{AccessMode, RemoteAccess};
pub use technology::{fig1_rows, Technology, TimeScaleRow};
pub use timing::{CalibrationPolicy, TaskTiming, TimingModel};
