//! The cloud / REST access model for quantum devices.
//!
//! §3 of the paper ("Access and allocation model"): *current quantum
//! computers are typically accessed via dedicated libraries and REST APIs,
//! supported by internal queuing systems*. For an HPC job this adds, per
//! kernel: the submission round trip, the vendor-side queue wait (shared
//! with outside users), and the result-polling quantization.
//!
//! Experiment **E7** uses this module to quantify when the access-model
//! overhead dominates the kernel itself (short superconducting kernels) and
//! when it vanishes in the noise (neutral-atom jobs).

use crate::technology::Technology;
use hpcqc_simcore::dist::Dist;
use hpcqc_simcore::rng::SimRng;
use hpcqc_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How the HPC side reaches the QPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessMode {
    /// On-prem integration: sub-millisecond submit path, no vendor queue.
    Integrated {
        /// One-way submit latency (seconds), e.g. RPC over the fabric.
        submit_latency: Dist,
    },
    /// Cloud access through a vendor REST API.
    Cloud(RemoteAccess),
}

impl AccessMode {
    /// A typical on-prem integration profile (~200 µs RPC).
    pub fn integrated() -> Self {
        AccessMode::Integrated {
            submit_latency: Dist::log_normal_mean_cv(200e-6, 0.5).clamped(20e-6, 5e-3),
        }
    }

    /// A typical public-cloud profile for the given technology.
    pub fn cloud(technology: Technology) -> Self {
        AccessMode::Cloud(RemoteAccess::typical(technology))
    }

    /// Samples the access overhead added to one kernel execution
    /// (everything except the kernel's own hardware time).
    pub fn sample_overhead(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            AccessMode::Integrated { submit_latency } => {
                // Submit + completion notification.
                submit_latency.sample_duration(rng) + submit_latency.sample_duration(rng)
            }
            AccessMode::Cloud(remote) => remote.sample_overhead(rng),
        }
    }

    /// Mean access overhead in seconds (analytic).
    pub fn mean_overhead_secs(&self) -> f64 {
        match self {
            AccessMode::Integrated { submit_latency } => 2.0 * submit_latency.mean(),
            AccessMode::Cloud(remote) => remote.mean_overhead_secs(),
        }
    }
}

/// Parameters of a vendor cloud endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteAccess {
    rtt: Dist,
    vendor_queue: Dist,
    poll_interval: SimDuration,
}

impl RemoteAccess {
    /// Creates a profile from a round-trip-time distribution, a vendor queue
    /// wait distribution (both seconds) and the client's polling interval.
    pub fn new(rtt: Dist, vendor_queue: Dist, poll_interval: SimDuration) -> Self {
        RemoteAccess {
            rtt,
            vendor_queue,
            poll_interval,
        }
    }

    /// A typical public-internet profile: ~80 ms RTT, technology-dependent
    /// vendor queue (busier machines queue longer), 2 s polling.
    pub fn typical(technology: Technology) -> Self {
        // Vendor-side queue waits grow with how contended each technology's
        // public endpoints are; NISQ clouds routinely show seconds-to-minutes.
        let vendor_queue = match technology {
            Technology::Superconducting => {
                Dist::log_normal_mean_cv(45.0, 1.5).clamped(1.0, 1_800.0)
            }
            Technology::TrappedIon => Dist::log_normal_mean_cv(120.0, 1.2).clamped(5.0, 3_600.0),
            Technology::NeutralAtom => Dist::log_normal_mean_cv(300.0, 1.0).clamped(10.0, 7_200.0),
            Technology::Photonic => Dist::log_normal_mean_cv(30.0, 1.5).clamped(1.0, 1_200.0),
            Technology::SpinQubit => Dist::log_normal_mean_cv(60.0, 1.2).clamped(2.0, 1_800.0),
        };
        RemoteAccess::new(
            Dist::log_normal_mean_cv(0.08, 0.4).clamped(0.02, 0.5),
            vendor_queue,
            SimDuration::from_secs(2),
        )
    }

    /// The round-trip-time distribution.
    pub fn rtt(&self) -> &Dist {
        &self.rtt
    }

    /// The vendor-queue wait distribution.
    pub fn vendor_queue(&self) -> &Dist {
        &self.vendor_queue
    }

    /// The client polling interval.
    pub fn poll_interval(&self) -> SimDuration {
        self.poll_interval
    }

    /// Samples the total overhead one kernel pays for cloud access:
    /// submit RTT + vendor queue + result poll quantization + result RTT.
    pub fn sample_overhead(&self, rng: &mut SimRng) -> SimDuration {
        let submit = self.rtt.sample_duration(rng);
        let queue = self.vendor_queue.sample_duration(rng);
        // Completion lands uniformly within a polling window.
        let poll = SimDuration::from_secs_f64(self.poll_interval.as_secs_f64() * rng.f64());
        let fetch = self.rtt.sample_duration(rng);
        submit + queue + poll + fetch
    }

    /// Mean overhead in seconds (analytic).
    pub fn mean_overhead_secs(&self) -> f64 {
        2.0 * self.rtt.mean() + self.vendor_queue.mean() + self.poll_interval.as_secs_f64() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_overhead_sub_millisecond_scale() {
        let mode = AccessMode::integrated();
        assert!(mode.mean_overhead_secs() < 0.01);
        let mut rng = SimRng::seed_from(1);
        let oh = mode.sample_overhead(&mut rng);
        assert!(oh < SimDuration::from_millis(20), "overhead {oh}");
    }

    #[test]
    fn cloud_overhead_dominated_by_vendor_queue() {
        let mode = AccessMode::cloud(Technology::Superconducting);
        // ~45 s queue + ~0.16 s RTTs + 1 s poll → tens of seconds.
        let mean = mode.mean_overhead_secs();
        assert!((10.0..120.0).contains(&mean), "mean overhead {mean}");
    }

    #[test]
    fn cloud_overhead_vs_integrated_is_orders_of_magnitude() {
        let ratio = AccessMode::cloud(Technology::Superconducting).mean_overhead_secs()
            / AccessMode::integrated().mean_overhead_secs();
        assert!(ratio > 1_000.0, "ratio {ratio}");
    }

    #[test]
    fn sampled_overhead_positive_and_reproducible() {
        let remote = RemoteAccess::typical(Technology::TrappedIon);
        let a = remote.sample_overhead(&mut SimRng::seed_from(5));
        let b = remote.sample_overhead(&mut SimRng::seed_from(5));
        assert_eq!(a, b);
        assert!(a > SimDuration::ZERO);
    }

    #[test]
    fn poll_quantization_bounded_by_interval() {
        let remote = RemoteAccess::new(
            Dist::constant(0.0),
            Dist::constant(0.0),
            SimDuration::from_secs(10),
        );
        let mut rng = SimRng::seed_from(6);
        for _ in 0..100 {
            let oh = remote.sample_overhead(&mut rng);
            assert!(oh <= SimDuration::from_secs(10));
        }
    }

    #[test]
    fn all_technologies_have_cloud_profiles() {
        for t in Technology::ALL {
            let mode = AccessMode::cloud(t);
            assert!(mode.mean_overhead_secs() > 0.0);
        }
    }
}
