//! Allocated-vs-used accounting: the paper's core waste metric.
//!
//! §3 of the paper: with exclusive co-scheduling, either the QPU sits
//! allocated-but-idle (superconducting case) or the classical nodes do
//! (neutral-atom case). [`WasteTracker`] integrates both signals exactly:
//! `allocated(t)` (resources held) and `used(t)` (resources doing work);
//! the gap is the waste every experiment reports.

use hpcqc_simcore::stats::TimeWeighted;
use hpcqc_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Tracks allocated vs productively-used units of one resource class.
///
/// # Examples
///
/// ```
/// use hpcqc_metrics::waste::WasteTracker;
/// use hpcqc_simcore::time::SimTime;
///
/// let mut w = WasteTracker::new(SimTime::ZERO, 10.0);
/// w.set_allocated(SimTime::ZERO, 10.0);      // job holds 10 nodes
/// w.set_used(SimTime::ZERO, 10.0);           // ... and computes on all 10
/// w.set_used(SimTime::from_secs(60), 0.0);   // quantum phase: nodes idle
/// w.set_used(SimTime::from_secs(120), 10.0); // classical resumes
/// let end = SimTime::from_secs(180);
/// assert_eq!(w.allocated_unit_seconds(end), 1_800.0);
/// assert_eq!(w.used_unit_seconds(end), 1_200.0);
/// assert_eq!(w.wasted_unit_seconds(end), 600.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WasteTracker {
    allocated: TimeWeighted,
    used: TimeWeighted,
    capacity: f64,
    /// Unit-seconds of completed work later discarded by fault-driven
    /// rewinds (classical progress lost since the last checkpoint). A
    /// plain accumulator: the work *was* performed — and is already in
    /// the `used` integral — but had to be re-done, so it is waste of a
    /// third kind next to allocated-idle.
    rewound: f64,
}

impl WasteTracker {
    /// Creates a tracker for a resource with `capacity` units.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > 0`.
    pub fn new(start: SimTime, capacity: f64) -> Self {
        assert!(capacity > 0.0, "WasteTracker: capacity must be positive");
        WasteTracker {
            allocated: TimeWeighted::new(start, 0.0),
            used: TimeWeighted::new(start, 0.0),
            capacity,
            rewound: 0.0,
        }
    }

    /// Books `unit_seconds` of completed work as discarded by a
    /// fault-driven rewind (e.g. classical progress since the last
    /// checkpoint when a node failure restarts the phase).
    ///
    /// # Panics
    ///
    /// Panics if `unit_seconds` is negative or non-finite.
    pub fn add_rewound(&mut self, unit_seconds: f64) {
        assert!(
            unit_seconds.is_finite() && unit_seconds >= 0.0,
            "rewound work must be finite and ≥ 0, got {unit_seconds}"
        );
        self.rewound += unit_seconds;
    }

    /// Total unit-seconds of completed work discarded by fault-driven
    /// rewinds so far.
    pub fn rewound_unit_seconds(&self) -> f64 {
        self.rewound
    }

    /// Sets the allocated unit count at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds capacity or is negative.
    pub fn set_allocated(&mut self, now: SimTime, value: f64) {
        assert!(
            (0.0..=self.capacity + 1e-9).contains(&value),
            "allocated {value} outside [0, {}]",
            self.capacity
        );
        self.allocated.set(now, value);
    }

    /// Adds a delta to the allocated unit count at `now`.
    pub fn add_allocated(&mut self, now: SimTime, delta: f64) {
        let v = self.allocated.current() + delta;
        self.set_allocated(now, v);
    }

    /// Sets the productively-used unit count at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds capacity or is negative.
    pub fn set_used(&mut self, now: SimTime, value: f64) {
        assert!(
            (0.0..=self.capacity + 1e-9).contains(&value),
            "used {value} outside [0, {}]",
            self.capacity
        );
        self.used.set(now, value);
    }

    /// Adds a delta to the used unit count at `now`.
    pub fn add_used(&mut self, now: SimTime, delta: f64) {
        let v = self.used.current() + delta;
        self.set_used(now, v);
    }

    /// Currently allocated units.
    pub fn allocated_now(&self) -> f64 {
        self.allocated.current()
    }

    /// Currently used units.
    pub fn used_now(&self) -> f64 {
        self.used.current()
    }

    /// The capacity this tracker was created with.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Allocated unit-seconds over `[start, until]`.
    pub fn allocated_unit_seconds(&self, until: SimTime) -> f64 {
        self.allocated.integral(until)
    }

    /// Used unit-seconds over `[start, until]`.
    pub fn used_unit_seconds(&self, until: SimTime) -> f64 {
        self.used.integral(until)
    }

    /// Allocated-but-unused unit-seconds over `[start, until]`.
    ///
    /// Clamped at zero: momentary used > allocated (shared-queue QPU use
    /// without exclusive allocation) counts as zero waste, not negative.
    pub fn wasted_unit_seconds(&self, until: SimTime) -> f64 {
        (self.allocated.integral(until) - self.used.integral(until)).max(0.0)
    }

    /// Allocation fraction of capacity over `[start, until]`.
    pub fn allocated_fraction(&self, until: SimTime) -> f64 {
        self.allocated.time_average(until) / self.capacity
    }

    /// Productive-use fraction of capacity over `[start, until]`.
    pub fn used_fraction(&self, until: SimTime) -> f64 {
        self.used.time_average(until) / self.capacity
    }

    /// Efficiency: used / allocated over `[start, until]`; 1.0 when nothing
    /// was ever allocated (no waste possible).
    pub fn efficiency(&self, until: SimTime) -> f64 {
        let alloc = self.allocated.integral(until);
        if alloc <= 0.0 {
            1.0
        } else {
            (self.used.integral(until) / alloc).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_superconducting_shape() {
        // 1 QPU allocated for 1 h, actually used 10 s per classical step
        // over 6 steps → 60 s of 3600 s.
        let mut w = WasteTracker::new(SimTime::ZERO, 1.0);
        w.set_allocated(SimTime::ZERO, 1.0);
        let mut t = 0u64;
        for _ in 0..6 {
            t += 590; // classical work, QPU idle
            w.set_used(SimTime::from_secs(t), 1.0);
            t += 10; // 10 s quantum task
            w.set_used(SimTime::from_secs(t), 0.0);
        }
        let end = SimTime::from_secs(3_600);
        w.set_allocated(end, 0.0);
        assert!((w.used_fraction(end) - 60.0 / 3_600.0).abs() < 1e-9);
        assert!(w.efficiency(end) < 0.02, "QPU efficiency must be tiny");
        assert!((w.wasted_unit_seconds(end) - 3_540.0).abs() < 1e-6);
    }

    #[test]
    fn add_variants() {
        let mut w = WasteTracker::new(SimTime::ZERO, 4.0);
        w.add_allocated(SimTime::ZERO, 4.0);
        w.add_used(SimTime::ZERO, 2.0);
        w.add_used(SimTime::from_secs(10), -2.0);
        assert_eq!(w.allocated_now(), 4.0);
        assert_eq!(w.used_now(), 0.0);
        assert_eq!(w.used_unit_seconds(SimTime::from_secs(10)), 20.0);
    }

    #[test]
    fn rewound_accumulates_independently() {
        let mut w = WasteTracker::new(SimTime::ZERO, 4.0);
        assert_eq!(w.rewound_unit_seconds(), 0.0);
        w.add_rewound(120.0);
        w.add_rewound(30.0);
        assert_eq!(w.rewound_unit_seconds(), 150.0);
        // Rewinds don't perturb the allocated/used integrals.
        assert_eq!(w.allocated_unit_seconds(SimTime::from_secs(100)), 0.0);
        assert_eq!(w.used_unit_seconds(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    #[should_panic(expected = "rewound")]
    fn negative_rewound_panics() {
        let mut w = WasteTracker::new(SimTime::ZERO, 1.0);
        w.add_rewound(-1.0);
    }

    #[test]
    fn efficiency_with_no_allocation_is_one() {
        let w = WasteTracker::new(SimTime::ZERO, 2.0);
        assert_eq!(w.efficiency(SimTime::from_secs(100)), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn over_capacity_panics() {
        let mut w = WasteTracker::new(SimTime::ZERO, 1.0);
        w.set_allocated(SimTime::ZERO, 2.0);
    }

    #[test]
    fn fractions_normalized_by_capacity() {
        let mut w = WasteTracker::new(SimTime::ZERO, 10.0);
        w.set_allocated(SimTime::ZERO, 5.0);
        let end = SimTime::from_secs(100);
        assert!((w.allocated_fraction(end) - 0.5).abs() < 1e-12);
        assert_eq!(w.used_fraction(end), 0.0);
    }
}
