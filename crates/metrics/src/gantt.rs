//! Interval recording: who occupied what, when.
//!
//! The [`GanttRecorder`] collects labelled `[start, end)` intervals per
//! resource lane ("node0", "qpu0", …). Experiments use it for exact busy
//! accounting and the examples render it as ASCII art, which makes the
//! strategies' behaviour (Fig. 2–4 of the paper) directly visible in a
//! terminal.

use hpcqc_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded interval on a lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// What occupied the lane (job name, "calibration", …).
    pub tag: String,
}

impl Interval {
    /// The interval's length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Records labelled occupancy intervals per resource lane.
///
/// # Examples
///
/// ```
/// use hpcqc_metrics::gantt::GanttRecorder;
/// use hpcqc_simcore::time::SimTime;
///
/// let mut g = GanttRecorder::new();
/// g.record("qpu0", SimTime::ZERO, SimTime::from_secs(10), "job1");
/// g.record("qpu0", SimTime::from_secs(40), SimTime::from_secs(50), "job2");
/// assert_eq!(g.busy("qpu0").as_secs(), 20);
/// assert!((g.utilization("qpu0", SimTime::ZERO, SimTime::from_secs(100)) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GanttRecorder {
    lanes: BTreeMap<String, Vec<Interval>>,
}

impl GanttRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        GanttRecorder::default()
    }

    /// Records an occupancy interval on `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        start: SimTime,
        end: SimTime,
        tag: impl Into<String>,
    ) {
        assert!(end >= start, "GanttRecorder: end before start");
        self.lanes.entry(lane.into()).or_default().push(Interval {
            start,
            end,
            tag: tag.into(),
        });
    }

    /// The lanes recorded so far, in name order.
    pub fn lanes(&self) -> impl Iterator<Item = &str> {
        self.lanes.keys().map(String::as_str)
    }

    /// The intervals of a lane (recording order).
    pub fn intervals(&self, lane: &str) -> &[Interval] {
        self.lanes.get(lane).map_or(&[], Vec::as_slice)
    }

    /// Total busy time on a lane (assumes non-overlapping intervals, which
    /// holds for exclusive resources).
    pub fn busy(&self, lane: &str) -> SimDuration {
        self.intervals(lane).iter().map(Interval::duration).sum()
    }

    /// Busy fraction of a lane over `[from, until]`.
    ///
    /// Intervals are clipped to the window.
    pub fn utilization(&self, lane: &str, from: SimTime, until: SimTime) -> f64 {
        let span = until.saturating_since(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .intervals(lane)
            .iter()
            .map(|iv| {
                let s = iv.start.max(from);
                let e = iv.end.min(until);
                e.saturating_since(s).as_secs_f64()
            })
            .sum();
        busy / span
    }

    /// The latest interval end across all lanes ([`SimTime::ZERO`] if empty).
    pub fn horizon(&self) -> SimTime {
        self.lanes
            .values()
            .flat_map(|v| v.iter().map(|iv| iv.end))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Renders an ASCII Gantt chart, `width` characters of timeline from
    /// `from` to `until`. Each lane is one row; occupied cells show the
    /// first character of the interval tag.
    pub fn render_ascii(&self, from: SimTime, until: SimTime, width: usize) -> String {
        let width = width.max(10);
        let span = until.saturating_since(from).as_secs_f64();
        let mut out = String::new();
        if span <= 0.0 {
            return out;
        }
        let label_w = self.lanes.keys().map(String::len).max().unwrap_or(4).max(4);
        for (lane, intervals) in &self.lanes {
            let mut row = vec!['.'; width];
            for iv in intervals {
                let s = iv.start.max(from).saturating_since(from).as_secs_f64();
                let e = iv.end.min(until).saturating_since(from).as_secs_f64();
                if e <= s {
                    continue;
                }
                let a = ((s / span) * width as f64) as usize;
                let b = (((e / span) * width as f64).ceil() as usize).min(width);
                let c = iv.tag.chars().next().unwrap_or('#');
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = c;
                }
            }
            let _ = writeln!(out, "{lane:<label_w$} |{}|", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:<label_w$}  {} .. {}", "time", from, until);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_sums_intervals() {
        let mut g = GanttRecorder::new();
        g.record("n0", SimTime::ZERO, SimTime::from_secs(5), "a");
        g.record("n0", SimTime::from_secs(10), SimTime::from_secs(20), "b");
        assert_eq!(g.busy("n0"), SimDuration::from_secs(15));
        assert_eq!(g.busy("missing"), SimDuration::ZERO);
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut g = GanttRecorder::new();
        g.record("n0", SimTime::ZERO, SimTime::from_secs(100), "a");
        // Window [50, 150): only 50 s of the interval falls inside.
        let u = g.utilization("n0", SimTime::from_secs(50), SimTime::from_secs(150));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn horizon_is_latest_end() {
        let mut g = GanttRecorder::new();
        assert_eq!(g.horizon(), SimTime::ZERO);
        g.record("a", SimTime::ZERO, SimTime::from_secs(7), "x");
        g.record("b", SimTime::ZERO, SimTime::from_secs(3), "y");
        assert_eq!(g.horizon(), SimTime::from_secs(7));
    }

    #[test]
    fn ascii_render_marks_cells() {
        let mut g = GanttRecorder::new();
        g.record("qpu0", SimTime::ZERO, SimTime::from_secs(50), "job");
        let art = g.render_ascii(SimTime::ZERO, SimTime::from_secs(100), 20);
        let row = art.lines().next().unwrap();
        assert!(row.contains("jjjjjjjjjj"), "{art}");
        assert!(row.contains(".........."), "{art}");
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn reversed_interval_panics() {
        let mut g = GanttRecorder::new();
        g.record("n", SimTime::from_secs(5), SimTime::ZERO, "x");
    }

    #[test]
    fn lanes_sorted() {
        let mut g = GanttRecorder::new();
        g.record("b", SimTime::ZERO, SimTime::ZERO, "x");
        g.record("a", SimTime::ZERO, SimTime::ZERO, "x");
        let lanes: Vec<&str> = g.lanes().collect();
        assert_eq!(lanes, vec!["a", "b"]);
    }
}
