//! # hpcqc-metrics
//!
//! Measurement layer of the `hpcqc` simulator: exact (time-integrated, not
//! sampled) accounting of what every strategy did with the machine.
//!
//! * [`waste`] — allocated-vs-used integration; quantifies the paper's
//!   "elephant": exclusively allocated resources sitting idle;
//! * [`jobstats`] — per-job outcomes (wait, turnaround, bounded slowdown,
//!   phase waits) and aggregates;
//! * [`gantt`] — labelled occupancy intervals with ASCII rendering, making
//!   the Fig. 2–4 behaviours visible in a terminal;
//! * [`report`] — aligned text/markdown/CSV tables for `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gantt;
pub mod jobstats;
pub mod report;
pub mod waste;

pub use gantt::{GanttRecorder, Interval};
pub use jobstats::{JobRecord, JobStats};
pub use report::{fmt_pct, fmt_secs, Table};
pub use waste::WasteTracker;
