//! Report tables: the bridge from simulation output to `EXPERIMENTS.md`.
//!
//! A [`Table`] holds string cells and renders to aligned plain text,
//! GitHub-flavoured markdown, or CSV. The repro harness prints one table
//! per paper figure/claim.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use hpcqc_metrics::report::Table;
///
/// let mut t = Table::new(vec!["technology", "job p50"]);
/// t.row(vec!["superconducting".into(), "9.8 s".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| technology"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "Table: need at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "Table: row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// The header cells.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(w) {
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        out.push('|');
        for width in &w {
            out.push_str(&format!("{:-<1$}|", "", width + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (naïve quoting: cells containing commas get quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    /// Plain-text aligned rendering (same layout as markdown, no pipes).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        for (cell, width) in self.headers.iter().zip(&w) {
            write!(f, "{cell:<width$}  ")?;
        }
        writeln!(f)?;
        for width in &w {
            write!(f, "{:-<width$}  ", "")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (cell, width) in row.iter().zip(&w) {
                write!(f, "{cell:<width$}  ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats seconds with an auto-selected human unit, for table cells.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.1} s")
    } else if secs < 7_200.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{:.1} h", secs / 3_600.0)
    }
}

/// Formats a `[0,1]` fraction as a percentage cell.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x".into(), "1234".into()]);
        t.row(vec!["longer".into(), "5".into()]);
        t
    }

    #[test]
    fn markdown_aligned() {
        let md = table().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| a"));
        assert!(lines[1].starts_with("|---"));
        assert_eq!(lines[2].len(), lines[0].len(), "rows must align");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["has \"q\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"q\"\"\""));
    }

    #[test]
    fn display_plain() {
        let s = table().to_string();
        assert!(s.contains("longer"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(5e-6), "5.0 µs");
        assert_eq!(fmt_secs(0.25), "250.0 ms");
        assert_eq!(fmt_secs(12.0), "12.0 s");
        assert_eq!(fmt_secs(600.0), "10.0 min");
        assert_eq!(fmt_secs(10_800.0), "3.0 h");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.034), "3.4%");
        assert_eq!(fmt_pct(1.0), "100.0%");
    }
}
