//! Per-job outcome records and aggregate statistics.
//!
//! The standard batch-scheduling metrics: wait time, turnaround, bounded
//! slowdown — plus the hybrid-specific ones the paper's argument needs:
//! time a job's *allocated* resources sat idle (the waste that exclusive
//! co-scheduling produces).
//!
//! ## Memory model
//!
//! [`JobStats`] keeps every aggregate **streaming** (running sums, counts,
//! and [`P2Quantile`] sketches), updated as records arrive. Full
//! [`JobRecord`]s are additionally retained up to a configurable cap
//! ([`JobStats::with_cap`]); below the cap every aggregate is computed
//! from the retained records exactly as it always was, so small runs are
//! bit-for-bit unchanged. Past the cap, new records fold into the
//! streaming aggregates only — a month-long million-job simulation holds
//! O(cap) metric memory instead of O(jobs).

use hpcqc_simcore::stats::{bounded_slowdown, P2Quantile, Samples};
use hpcqc_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The outcome of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job name.
    pub name: String,
    /// Submitting user.
    pub user: String,
    /// Submission instant.
    pub submit: SimTime,
    /// First time any resources started running job work.
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Classical nodes the job occupied (max over its lifetime).
    pub nodes: u32,
    /// Whether the job had quantum phases.
    pub hybrid: bool,
    /// `false` if the job was killed (walltime exceeded, node failure) and
    /// exhausted its requeue budget.
    pub completed: bool,
    /// Node-seconds the job held allocated.
    pub node_seconds_allocated: f64,
    /// Node-seconds of actual classical computation.
    pub node_seconds_used: f64,
    /// QPU-seconds the job held allocated (exclusive strategies) — 0 when
    /// the QPU was only used through a shared queue.
    pub qpu_seconds_allocated: f64,
    /// QPU-seconds of actual kernel execution.
    pub qpu_seconds_used: f64,
    /// Extra wait accumulated at phase boundaries (workflow re-queueing,
    /// VQPU interleaving delay, malleability re-expansion).
    pub phase_wait: SimDuration,
}

impl JobRecord {
    /// Queue wait before the job first ran.
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.submit)
    }

    /// Submit-to-completion time.
    pub fn turnaround(&self) -> SimDuration {
        self.end.since(self.submit)
    }

    /// Time the job spent running (first start to end).
    pub fn runtime(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Allocated-but-idle node-seconds (the co-scheduling waste).
    pub fn node_seconds_wasted(&self) -> f64 {
        (self.node_seconds_allocated - self.node_seconds_used).max(0.0)
    }

    /// Allocated-but-idle QPU-seconds.
    pub fn qpu_seconds_wasted(&self) -> f64 {
        (self.qpu_seconds_allocated - self.qpu_seconds_used).max(0.0)
    }
}

/// Streaming aggregates over one population of jobs (all / hybrid-only /
/// classical-only). Sums accumulate in record order, so while the full
/// record list is retained the derived means equal the record-walk values
/// bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct AggStats {
    total: u64,
    completed: u64,
    sum_wait: f64,
    sum_turnaround: f64,
    sum_slowdown: f64,
    sum_phase_wait: f64,
    node_seconds_wasted: f64,
    qpu_seconds_wasted: f64,
    makespan: SimTime,
    wait_p95: P2Quantile,
    turnaround_p95: P2Quantile,
}

impl Default for AggStats {
    fn default() -> Self {
        AggStats {
            total: 0,
            completed: 0,
            sum_wait: 0.0,
            sum_turnaround: 0.0,
            sum_slowdown: 0.0,
            sum_phase_wait: 0.0,
            node_seconds_wasted: 0.0,
            qpu_seconds_wasted: 0.0,
            makespan: SimTime::ZERO,
            wait_p95: P2Quantile::new(0.95),
            turnaround_p95: P2Quantile::new(0.95),
        }
    }
}

impl AggStats {
    fn record(&mut self, record: &JobRecord) {
        self.total += 1;
        if record.completed {
            self.completed += 1;
        }
        let wait = record.wait().as_secs_f64();
        let turnaround = record.turnaround().as_secs_f64();
        self.sum_wait += wait;
        self.sum_turnaround += turnaround;
        self.sum_slowdown +=
            bounded_slowdown(record.wait(), record.runtime(), SimDuration::from_secs(10));
        self.sum_phase_wait += record.phase_wait.as_secs_f64();
        self.node_seconds_wasted += record.node_seconds_wasted();
        self.qpu_seconds_wasted += record.qpu_seconds_wasted();
        self.makespan = self.makespan.max(record.end);
        self.wait_p95.record(wait);
        self.turnaround_p95.record(turnaround);
    }

    fn mean(&self, sum: f64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            sum / self.total as f64
        }
    }
}

/// Aggregates [`JobRecord`]s into the summary the experiments report.
///
/// Aggregates are maintained streaming; full records are retained up to a
/// cap (unlimited for [`JobStats::new`]) — see the module docs for the
/// memory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    records: Vec<JobRecord>,
    cap: usize,
    all: AggStats,
    hybrid: AggStats,
    classical: AggStats,
}

impl Default for JobStats {
    fn default() -> Self {
        JobStats::with_cap(usize::MAX)
    }
}

impl JobStats {
    /// Creates an empty collector retaining every record.
    pub fn new() -> Self {
        JobStats::default()
    }

    /// Creates an empty collector retaining at most `cap` full records;
    /// records past the cap fold into the streaming aggregates only.
    pub fn with_cap(cap: usize) -> Self {
        JobStats {
            records: Vec::new(),
            cap,
            all: AggStats::default(),
            hybrid: AggStats::default(),
            classical: AggStats::default(),
        }
    }

    /// The record-retention cap this collector was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// `true` while every recorded job is still retained in full — exact
    /// per-record reporting is available; `false` once the cap truncated
    /// retention and only streaming aggregates cover the whole population.
    pub fn is_exact(&self) -> bool {
        self.records.len() as u64 == self.all.total
    }

    /// Records one completed job.
    pub fn record(&mut self, record: JobRecord) {
        self.all.record(&record);
        if record.hybrid {
            self.hybrid.record(&record);
        } else {
            self.classical.record(&record);
        }
        if self.records.len() < self.cap {
            self.records.push(record);
        }
    }

    /// The retained records — all of them while [`JobStats::is_exact`],
    /// the first `cap` otherwise.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of recorded jobs (including any past the retention cap).
    pub fn len(&self) -> usize {
        self.all.total as usize
    }

    /// `true` when nothing has completed.
    pub fn is_empty(&self) -> bool {
        self.all.total == 0
    }

    /// Mean queue wait in seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        self.all.mean(self.all.sum_wait)
    }

    /// Mean turnaround in seconds.
    pub fn mean_turnaround_secs(&self) -> f64 {
        self.all.mean(self.all.sum_turnaround)
    }

    /// Mean bounded slowdown (τ = 10 s, the literature's usual threshold).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        self.all.mean(self.all.sum_slowdown)
    }

    /// Mean extra wait accumulated at phase boundaries, seconds.
    pub fn mean_phase_wait_secs(&self) -> f64 {
        self.all.mean(self.all.sum_phase_wait)
    }

    /// Total allocated-but-idle node-hours across all jobs.
    pub fn total_node_hours_wasted(&self) -> f64 {
        self.all.node_seconds_wasted / 3_600.0
    }

    /// Total allocated-but-idle QPU-hours across all jobs.
    pub fn total_qpu_hours_wasted(&self) -> f64 {
        self.all.qpu_seconds_wasted / 3_600.0
    }

    /// Makespan: last completion ([`SimTime::ZERO`] when empty).
    pub fn makespan(&self) -> SimTime {
        self.all.makespan
    }

    /// Wait-time sample set (seconds) over the *retained* records, for
    /// exact quantile reporting. Partial past the retention cap — prefer
    /// [`JobStats::wait_p95_secs`] for capped collections.
    pub fn wait_samples(&self) -> Samples {
        self.records
            .iter()
            .map(|r| r.wait().as_secs_f64())
            .collect()
    }

    /// Turnaround sample set (seconds) over the retained records.
    pub fn turnaround_samples(&self) -> Samples {
        self.records
            .iter()
            .map(|r| r.turnaround().as_secs_f64())
            .collect()
    }

    /// 95th-percentile queue wait, seconds: exact while every record is
    /// retained, the streaming P² estimate over the whole population
    /// otherwise. `None` when empty.
    pub fn wait_p95_secs(&self) -> Option<f64> {
        if self.is_exact() {
            self.wait_samples().p95()
        } else {
            self.all.wait_p95.estimate()
        }
    }

    /// 95th-percentile turnaround, seconds (exact / P² as for
    /// [`JobStats::wait_p95_secs`]).
    pub fn turnaround_p95_secs(&self) -> Option<f64> {
        if self.is_exact() {
            self.turnaround_samples().p95()
        } else {
            self.all.turnaround_p95.estimate()
        }
    }

    /// Number of jobs that finished successfully.
    pub fn completed_count(&self) -> usize {
        self.all.completed as usize
    }

    /// Number of jobs killed without completing (walltime/failures).
    pub fn failed_count(&self) -> usize {
        (self.all.total - self.all.completed) as usize
    }

    /// A sub-collector containing only hybrid jobs.
    pub fn hybrid_only(&self) -> JobStats {
        self.filtered(true)
    }

    /// A sub-collector containing only classical jobs.
    pub fn classical_only(&self) -> JobStats {
        self.filtered(false)
    }

    fn filtered(&self, hybrid: bool) -> JobStats {
        let sub = if hybrid {
            &self.hybrid
        } else {
            &self.classical
        };
        JobStats {
            records: self
                .records
                .iter()
                .filter(|r| r.hybrid == hybrid)
                .cloned()
                .collect(),
            cap: self.cap,
            all: sub.clone(),
            hybrid: if hybrid {
                sub.clone()
            } else {
                AggStats::default()
            },
            classical: if hybrid {
                AggStats::default()
            } else {
                sub.clone()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(submit: u64, start: u64, end: u64, hybrid: bool) -> JobRecord {
        JobRecord {
            name: "j".into(),
            user: "u".into(),
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            nodes: 4,
            hybrid,
            completed: true,
            node_seconds_allocated: 4.0 * (end - start) as f64,
            node_seconds_used: 2.0 * (end - start) as f64,
            qpu_seconds_allocated: 0.0,
            qpu_seconds_used: 0.0,
            phase_wait: SimDuration::ZERO,
        }
    }

    #[test]
    fn record_timings() {
        let r = rec(0, 10, 110, false);
        assert_eq!(r.wait(), SimDuration::from_secs(10));
        assert_eq!(r.turnaround(), SimDuration::from_secs(110));
        assert_eq!(r.runtime(), SimDuration::from_secs(100));
        assert_eq!(r.node_seconds_wasted(), 200.0);
    }

    #[test]
    fn aggregate_means() {
        let mut s = JobStats::new();
        s.record(rec(0, 0, 100, false));
        s.record(rec(0, 100, 200, true));
        assert_eq!(s.mean_wait_secs(), 50.0);
        assert_eq!(s.mean_turnaround_secs(), 150.0);
        assert_eq!(s.makespan(), SimTime::from_secs(200));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn split_by_kind() {
        let mut s = JobStats::new();
        s.record(rec(0, 0, 10, false));
        s.record(rec(0, 0, 10, true));
        s.record(rec(0, 0, 10, true));
        assert_eq!(s.hybrid_only().len(), 2);
        assert_eq!(s.classical_only().len(), 1);
    }

    #[test]
    fn waste_totals() {
        let mut s = JobStats::new();
        s.record(rec(0, 0, 3_600, false)); // 2 node-hours wasted
        assert!((s.total_node_hours_wasted() - 2.0).abs() < 1e-9);
        assert_eq!(s.total_qpu_hours_wasted(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = JobStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_wait_secs(), 0.0);
        assert_eq!(s.mean_bounded_slowdown(), 0.0);
        assert_eq!(s.makespan(), SimTime::ZERO);
    }

    #[test]
    fn slowdown_uses_bound() {
        let mut s = JobStats::new();
        // wait 90 s, run 10 s → slowdown 10.
        s.record(rec(0, 90, 100, false));
        assert_eq!(s.mean_bounded_slowdown(), 10.0);
    }

    #[test]
    fn capped_stats_match_uncapped_aggregates() {
        let mut exact = JobStats::new();
        let mut capped = JobStats::with_cap(10);
        for i in 0..200u64 {
            let r = rec(i, i + i % 7, i + 50 + (i * 13) % 90, i % 3 == 0);
            exact.record(r.clone());
            capped.record(r);
        }
        assert!(exact.is_exact());
        assert!(!capped.is_exact());
        assert_eq!(capped.records().len(), 10);
        assert_eq!(capped.len(), 200);
        // Every streaming aggregate is identical to the exact walk — the
        // sums accumulate in the same order.
        assert_eq!(capped.mean_wait_secs(), exact.mean_wait_secs());
        assert_eq!(capped.mean_turnaround_secs(), exact.mean_turnaround_secs());
        assert_eq!(
            capped.mean_bounded_slowdown(),
            exact.mean_bounded_slowdown()
        );
        assert_eq!(capped.makespan(), exact.makespan());
        assert_eq!(capped.failed_count(), exact.failed_count());
        assert_eq!(
            capped.total_node_hours_wasted(),
            exact.total_node_hours_wasted()
        );
        // Sub-populations survive the cap with full-population aggregates.
        assert_eq!(capped.hybrid_only().len(), exact.hybrid_only().len());
        assert_eq!(
            capped.hybrid_only().mean_turnaround_secs(),
            exact.hybrid_only().mean_turnaround_secs()
        );
        assert_eq!(
            capped.classical_only().mean_wait_secs(),
            exact.classical_only().mean_wait_secs()
        );
    }

    #[test]
    fn capped_quantiles_fall_back_to_sketch() {
        let mut exact = JobStats::new();
        let mut capped = JobStats::with_cap(16);
        for i in 0..5_000u64 {
            let wait = (i * 7919) % 1_000;
            let r = rec(0, wait, wait + 100, false);
            exact.record(r.clone());
            capped.record(r);
        }
        let truth = exact.wait_p95_secs().unwrap();
        let est = capped.wait_p95_secs().unwrap();
        assert!(
            (est - truth).abs() <= 0.05 * truth.max(1.0),
            "P² wait p95 {est} vs exact {truth}"
        );
        // Exact collections answer from the retained samples.
        assert_eq!(exact.wait_p95_secs(), exact.wait_samples().p95());
    }
}
