//! Per-job outcome records and aggregate statistics.
//!
//! The standard batch-scheduling metrics: wait time, turnaround, bounded
//! slowdown — plus the hybrid-specific ones the paper's argument needs:
//! time a job's *allocated* resources sat idle (the waste that exclusive
//! co-scheduling produces).

use hpcqc_simcore::stats::{bounded_slowdown, Samples};
use hpcqc_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The outcome of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job name.
    pub name: String,
    /// Submitting user.
    pub user: String,
    /// Submission instant.
    pub submit: SimTime,
    /// First time any resources started running job work.
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Classical nodes the job occupied (max over its lifetime).
    pub nodes: u32,
    /// Whether the job had quantum phases.
    pub hybrid: bool,
    /// `false` if the job was killed (walltime exceeded, node failure) and
    /// exhausted its requeue budget.
    pub completed: bool,
    /// Node-seconds the job held allocated.
    pub node_seconds_allocated: f64,
    /// Node-seconds of actual classical computation.
    pub node_seconds_used: f64,
    /// QPU-seconds the job held allocated (exclusive strategies) — 0 when
    /// the QPU was only used through a shared queue.
    pub qpu_seconds_allocated: f64,
    /// QPU-seconds of actual kernel execution.
    pub qpu_seconds_used: f64,
    /// Extra wait accumulated at phase boundaries (workflow re-queueing,
    /// VQPU interleaving delay, malleability re-expansion).
    pub phase_wait: SimDuration,
}

impl JobRecord {
    /// Queue wait before the job first ran.
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.submit)
    }

    /// Submit-to-completion time.
    pub fn turnaround(&self) -> SimDuration {
        self.end.since(self.submit)
    }

    /// Time the job spent running (first start to end).
    pub fn runtime(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Allocated-but-idle node-seconds (the co-scheduling waste).
    pub fn node_seconds_wasted(&self) -> f64 {
        (self.node_seconds_allocated - self.node_seconds_used).max(0.0)
    }

    /// Allocated-but-idle QPU-seconds.
    pub fn qpu_seconds_wasted(&self) -> f64 {
        (self.qpu_seconds_allocated - self.qpu_seconds_used).max(0.0)
    }
}

/// Aggregates [`JobRecord`]s into the summary the experiments report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    records: Vec<JobRecord>,
}

impl JobStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        JobStats::default()
    }

    /// Records one completed job.
    pub fn record(&mut self, record: JobRecord) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of completed jobs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean queue wait in seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        self.mean_of(|r| r.wait().as_secs_f64())
    }

    /// Mean turnaround in seconds.
    pub fn mean_turnaround_secs(&self) -> f64 {
        self.mean_of(|r| r.turnaround().as_secs_f64())
    }

    /// Mean bounded slowdown (τ = 10 s, the literature's usual threshold).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        self.mean_of(|r| bounded_slowdown(r.wait(), r.runtime(), SimDuration::from_secs(10)))
    }

    /// Mean extra wait accumulated at phase boundaries, seconds.
    pub fn mean_phase_wait_secs(&self) -> f64 {
        self.mean_of(|r| r.phase_wait.as_secs_f64())
    }

    /// Total allocated-but-idle node-hours across all jobs.
    pub fn total_node_hours_wasted(&self) -> f64 {
        self.records
            .iter()
            .map(JobRecord::node_seconds_wasted)
            .sum::<f64>()
            / 3_600.0
    }

    /// Total allocated-but-idle QPU-hours across all jobs.
    pub fn total_qpu_hours_wasted(&self) -> f64 {
        self.records
            .iter()
            .map(JobRecord::qpu_seconds_wasted)
            .sum::<f64>()
            / 3_600.0
    }

    /// Makespan: last completion ([`SimTime::ZERO`] when empty).
    pub fn makespan(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Wait-time sample set (seconds) for quantile reporting.
    pub fn wait_samples(&self) -> Samples {
        self.records
            .iter()
            .map(|r| r.wait().as_secs_f64())
            .collect()
    }

    /// Turnaround sample set (seconds).
    pub fn turnaround_samples(&self) -> Samples {
        self.records
            .iter()
            .map(|r| r.turnaround().as_secs_f64())
            .collect()
    }

    /// Number of jobs that finished successfully.
    pub fn completed_count(&self) -> usize {
        self.records.iter().filter(|r| r.completed).count()
    }

    /// Number of jobs killed without completing (walltime/failures).
    pub fn failed_count(&self) -> usize {
        self.records.len() - self.completed_count()
    }

    /// A sub-collector containing only hybrid jobs.
    pub fn hybrid_only(&self) -> JobStats {
        JobStats {
            records: self.records.iter().filter(|r| r.hybrid).cloned().collect(),
        }
    }

    /// A sub-collector containing only classical jobs.
    pub fn classical_only(&self) -> JobStats {
        JobStats {
            records: self.records.iter().filter(|r| !r.hybrid).cloned().collect(),
        }
    }

    fn mean_of(&self, f: impl Fn(&JobRecord) -> f64) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().map(f).sum::<f64>() / self.records.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(submit: u64, start: u64, end: u64, hybrid: bool) -> JobRecord {
        JobRecord {
            name: "j".into(),
            user: "u".into(),
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            nodes: 4,
            hybrid,
            completed: true,
            node_seconds_allocated: 4.0 * (end - start) as f64,
            node_seconds_used: 2.0 * (end - start) as f64,
            qpu_seconds_allocated: 0.0,
            qpu_seconds_used: 0.0,
            phase_wait: SimDuration::ZERO,
        }
    }

    #[test]
    fn record_timings() {
        let r = rec(0, 10, 110, false);
        assert_eq!(r.wait(), SimDuration::from_secs(10));
        assert_eq!(r.turnaround(), SimDuration::from_secs(110));
        assert_eq!(r.runtime(), SimDuration::from_secs(100));
        assert_eq!(r.node_seconds_wasted(), 200.0);
    }

    #[test]
    fn aggregate_means() {
        let mut s = JobStats::new();
        s.record(rec(0, 0, 100, false));
        s.record(rec(0, 100, 200, true));
        assert_eq!(s.mean_wait_secs(), 50.0);
        assert_eq!(s.mean_turnaround_secs(), 150.0);
        assert_eq!(s.makespan(), SimTime::from_secs(200));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn split_by_kind() {
        let mut s = JobStats::new();
        s.record(rec(0, 0, 10, false));
        s.record(rec(0, 0, 10, true));
        s.record(rec(0, 0, 10, true));
        assert_eq!(s.hybrid_only().len(), 2);
        assert_eq!(s.classical_only().len(), 1);
    }

    #[test]
    fn waste_totals() {
        let mut s = JobStats::new();
        s.record(rec(0, 0, 3_600, false)); // 2 node-hours wasted
        assert!((s.total_node_hours_wasted() - 2.0).abs() < 1e-9);
        assert_eq!(s.total_qpu_hours_wasted(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = JobStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_wait_secs(), 0.0);
        assert_eq!(s.mean_bounded_slowdown(), 0.0);
        assert_eq!(s.makespan(), SimTime::ZERO);
    }

    #[test]
    fn slowdown_uses_bound() {
        let mut s = JobStats::new();
        // wait 90 s, run 10 s → slowdown 10.
        s.record(rec(0, 90, 100, false));
        assert_eq!(s.mean_bounded_slowdown(), 10.0);
    }
}
