//! Offline `#[derive(Serialize, Deserialize)]` built directly on the
//! `proc_macro` API — the build environment has no registry access, so
//! `syn`/`quote` are unavailable and the input is parsed by hand.
//!
//! Supported shapes (everything the workspace derives on):
//! - named-field structs, unit structs
//! - tuple structs (newtype semantics for arity 1), `#[serde(transparent)]`
//! - enums with unit, tuple, and named-field variants (external tagging)
//!
//! Generics are intentionally unsupported; the derive panics with a clear
//! message if it meets them, at which point it should be extended.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// True if an attribute token group spells `serde(transparent)`.
fn attr_is_transparent(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes; returns whether any was
/// `#[serde(transparent)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut transparent = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                transparent |= attr_is_transparent(&g);
            }
            other => panic!("serde_derive: malformed attribute: {other:?}"),
        }
    }
    transparent
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Splits a token stream at top-level commas, tracking `<...>` depth so
/// commas inside generic arguments (e.g. `BTreeMap<String, u32>`) don't
/// split. Empty segments (trailing commas) are dropped.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_was_dash = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                // `->` never opens/closes a generic-argument list.
                '>' if !prev_was_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        segments.push(std::mem::take(&mut current));
                    }
                    prev_was_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_was_dash = p.as_char() == '-';
        } else {
            prev_was_dash = false;
        }
        current.push(token);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Parses `name: Type` fields out of a brace-group's contents.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|segment| {
            let mut tokens = segment.into_iter().peekable();
            skip_attrs(&mut tokens);
            skip_visibility(&mut tokens);
            match tokens.next() {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|segment| {
            let mut tokens = segment.into_iter().peekable();
            skip_attrs(&mut tokens);
            let name = match tokens.next() {
                Some(TokenTree::Ident(name)) => name.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            let shape = match tokens.next() {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(split_commas(g.stream()).len())
                }
                // `Variant = 3` style discriminants: still a unit variant.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => Shape::Unit,
                other => panic!("serde_derive: unexpected token in variant: {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let transparent = skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(split_commas(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input {
        name,
        transparent,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                assert_eq!(
                    fields.len(),
                    1,
                    "serde_derive: #[serde(transparent)] needs exactly one field"
                );
                let f = &fields[0];
                format!("::serde::Serialize::to_value(&self.{f})")
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
            }
        }
        Kind::TupleStruct(arity) => match arity {
            0 => "::serde::Value::Null".to_string(),
            1 => "::serde::Serialize::to_value(&self.0)".to_string(),
            n => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            }
        },
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Shape::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_ctor(path: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__private::field({map_expr}, \"{f}\")?"))
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                let f = &fields[0];
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::from_value(v)? }})"
                )
            } else {
                let ctor = gen_named_ctor(name, fields, "m");
                format!(
                    "match v.as_map() {{\n\
                     ::std::option::Option::Some(m) => ::std::result::Result::Ok({ctor}),\n\
                     ::std::option::Option::None => \
                     ::serde::__private::type_error(\"object for struct {name}\", v),\n\
                     }}"
                )
            }
        }
        Kind::TupleStruct(arity) => match arity {
            0 => format!("::std::result::Result::Ok({name}())"),
            1 => format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
            n => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match v.as_seq() {{\n\
                     ::std::option::Option::Some(items) if items.len() == {n} => \
                     ::std::result::Result::Ok({name}({})),\n\
                     _ => ::serde::__private::type_error(\
                     \"array of length {n} for struct {name}\", v),\n\
                     }}",
                    items.join(", ")
                )
            }
        },
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Named(fields) => {
                            let ctor = gen_named_ctor(&format!("{name}::{vname}"), fields, "m");
                            Some(format!(
                                "\"{vname}\" => match inner.as_map() {{\n\
                                 ::std::option::Option::Some(m) => \
                                 ::std::result::Result::Ok({ctor}),\n\
                                 ::std::option::Option::None => \
                                 ::serde::__private::type_error(\
                                 \"object for variant {name}::{vname}\", inner),\n\
                                 }},"
                            ))
                        }
                        Shape::Tuple(arity) => {
                            if *arity == 1 {
                                Some(format!(
                                    "\"{vname}\" => ::std::result::Result::Ok(\
                                     {name}::{vname}(\
                                     ::serde::Deserialize::from_value(inner)?)),"
                                ))
                            } else {
                                let items: Vec<String> = (0..*arity)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&items[{i}])?")
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vname}\" => match inner.as_seq() {{\n\
                                     ::std::option::Option::Some(items) \
                                     if items.len() == {arity} => \
                                     ::std::result::Result::Ok({name}::{vname}({})),\n\
                                     _ => ::serde::__private::type_error(\
                                     \"array of length {arity} for variant \
                                     {name}::{vname}\", inner),\n\
                                     }},",
                                    items.join(", ")
                                ))
                            }
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` of enum {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {data}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` of enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::serde::__private::type_error(\
                 \"string or single-key object for enum {name}\", other),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
