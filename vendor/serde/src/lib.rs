//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(transparent)]`) plus the JSON entry points in the
//! sibling `serde_json` stub. Instead of upstream's visitor-based data
//! model, this implementation round-trips through a self-describing
//! [`Value`] tree — equivalent for JSON, dramatically smaller, and fully
//! sufficient for the derive shapes the simulator uses (named structs,
//! newtype/transparent structs, unit and struct enum variants).

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer (covers the full `i64`/`u64` domain).
    Int(i128),
    /// JSON floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the serialized data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the serialized data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent struct fields; `Option` overrides this to `None`.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    // Accept floats with an exact integer value (JSON "1.0").
                    Value::Float(f) if f.fract() == 0.0 => {
                        <$t>::try_from(*f as i128).map_err(|_| {
                            Error::custom(format!(
                                "number {f} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                    other => Err(Error::custom(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
ser_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serializes key/value pairs: an object when every key serializes to a
/// string, otherwise an array of `[key, value]` pairs.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    pairs: impl Iterator<Item = (&'a K, &'a V)> + Clone,
) -> Value {
    let all_str = pairs
        .clone()
        .all(|(k, _)| matches!(k.to_value(), Value::Str(_)));
    if all_str {
        Value::Map(
            pairs
                .map(|(k, v)| {
                    let Value::Str(key) = k.to_value() else {
                        unreachable!()
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

/// Rebuilds key/value pairs from either map encoding.
fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|pair| {
                let items = pair
                    .as_seq()
                    .filter(|s| s.len() == 2)
                    .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
                Ok((K::from_value(&items[0])?, V::from_value(&items[1])?))
            })
            .collect(),
        other => Err(Error::custom(format!(
            "expected object or array of pairs, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(pairs.into_iter())
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected array, found {}", v.kind()))
                })?;
                let expect = [$($n),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected array of length {expect}, found {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Derive support (used by `serde_derive`-generated code)
// ---------------------------------------------------------------------------

/// Support plumbing for derive-generated code; not a public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Extracts a struct field by name, honouring `missing_field` defaults.
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => T::missing_field(name),
        }
    }

    /// Produces the canonical "expected X, found Y" error.
    pub fn type_error<T>(expected: &str, found: &Value) -> Result<T, Error> {
        Err(Error::custom(format!(
            "expected {expected}, found {}",
            found.kind()
        )))
    }
}
