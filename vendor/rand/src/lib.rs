//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the narrow slice of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`], the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and
//! [`Error`]. `StdRng` here is xoshiro256++ seeded through SplitMix64 —
//! a different stream than upstream's ChaCha12, but the workspace never
//! relies on upstream's exact stream, only on determinism and statistical
//! quality.

#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible RNG operations (infallible for
/// [`StdRng`](rngs::StdRng)).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; never fails for the vendored RNGs.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

mod sample {
    /// Types samplable uniformly over their whole domain via `Rng::gen`.
    pub trait Standard: Sized {
        /// Draws one value from `rng`.
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    /// Ranges samplable via `Rng::gen_range`.
    pub trait SampleRange {
        /// The element type the range produces.
        type Output;
        /// Draws one value uniformly from the range.
        fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    /// Rejection-free-enough uniform integer in `[0, n)` (Lemire reduction).
    pub(crate) fn below_u64<R: super::RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply reduction; bias is < 2^-64 per draw, far below
        // anything the simulator's statistics can resolve.
        let x = rng.next_u64();
        ((u128::from(x) * u128::from(n)) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange for std::ops::Range<$t> {
                type Output = $t;
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + below_u64(rng, span) as $t
                }
            }
            impl SampleRange for std::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    lo + below_u64(rng, span) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize);

    macro_rules! sint_range {
        ($($t:ty),*) => {$(
            impl SampleRange for std::ops::Range<$t> {
                type Output = $t;
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below_u64(rng, span) as i128) as $t
                }
            }
        )*};
    }
    sint_range!(i32, i64, isize);

    impl SampleRange for std::ops::Range<f64> {
        type Output = f64;
        fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            let u = <f64 as Standard>::sample(rng);
            let v = self.start + u * (self.end - self.start);
            // Floating rounding can land exactly on `end`; clamp back inside.
            // `next_down` (unlike a raw bits-1 decrement) is correct for
            // negative and zero endpoints.
            if v >= self.end {
                self.start.max(self.end.next_down())
            } else {
                v
            }
        }
    }
}

pub use sample::SampleRange;
pub use sample::Standard;

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic for a given seed, `Clone`-able, passes the statistical
    /// smoke tests the simulator relies on (uniformity, Box–Muller moments).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ is ill-defined from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0usize..9);
            assert!(i < 9);
        }
    }

    #[test]
    fn mean_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
