//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`] with the
//! builder knobs, [`BenchmarkGroup`], `iter` / `iter_batched`,
//! [`Throughput`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a plain wall-clock mean over an
//! adaptive iteration count — no statistics, plots, or comparisons — which
//! is enough to spot order-of-magnitude regressions and to keep
//! `cargo bench --no-run` compiling in CI.

#![warn(missing_docs)]
// Wall-clock timing is the entire purpose of a benchmark harness; the
// workspace-wide disallowed-methods guard targets simulation code only.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declares the work performed per iteration for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark measurement driver.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean nanoseconds per iteration, filled by `iter*`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Times a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget expires (at least once).
        let warm_until = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_until {
                break;
            }
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let budget = self.config.measurement_time;
        let min_iters = self.config.sample_size as u64;
        while elapsed < budget || iters < min_iters {
            let start = Instant::now();
            black_box(routine());
            elapsed += start.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times a routine with a fresh setup value per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine(setup()));
            if Instant::now() >= warm_until {
                break;
            }
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let budget = self.config.measurement_time;
        let min_iters = self.config.sample_size as u64;
        while elapsed < budget || iters < min_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
    filter: Option<String>,
    quick: bool,
}

impl Criterion {
    /// Sets the target number of measurement iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Applies CLI arguments (`--test` for smoke mode, a bare word as a
    /// substring filter; other flags are accepted and ignored). Upstream
    /// flags that take a separate value have that value skipped too, so
    /// e.g. `--save-baseline main` doesn't turn `main` into a filter.
    pub fn configure_from_args(mut self) -> Self {
        const VALUE_FLAGS: &[&str] = &[
            "--measurement-time",
            "--warm-up-time",
            "--sample-size",
            "--nresamples",
            "--noise-threshold",
            "--confidence-level",
            "--significance-level",
            "--save-baseline",
            "--baseline",
            "--baseline-lenient",
            "--load-baseline",
            "--output-format",
            "--color",
            "--colour",
            "--profile-time",
            "--plotting-backend",
        ];
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.quick = true,
                a if VALUE_FLAGS.contains(&a) => {
                    args.next();
                }
                a if a.starts_with("--") => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    fn effective(&self) -> Config {
        if self.quick {
            Config {
                sample_size: 1,
                warm_up_time: Duration::ZERO,
                measurement_time: Duration::ZERO,
            }
        } else {
            self.config.clone()
        }
    }

    fn skip(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }

    fn report(&self, id: &str, bencher: &Bencher<'_>, throughput: Option<Throughput>) {
        let mean = bencher.mean_ns;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / mean * 1e3),
            Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / mean * 1e9 / 1_048_576.0),
        });
        println!(
            "bench: {id:<50} {mean:>12.1} ns/iter  ({} iters){}",
            bencher.iters,
            rate.unwrap_or_default()
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        if self.skip(&id) {
            return self;
        }
        let config = self.effective();
        let mut bencher = Bencher {
            config: &config,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.name, id.into());
        if self.parent.skip(&id) {
            return self;
        }
        let mut config = self.parent.effective();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        let mut bencher = Bencher {
            config: &config,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        self.parent.report(&id, &bencher, self.throughput);
        self
    }

    /// Finishes the group (reporting is incremental; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Declares a group-runner function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::ZERO)
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 3);
    }

    #[test]
    fn groups_and_batched_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut total = 0u64;
        group.bench_function("b", |b| {
            b.iter_batched(|| 5u64, |x| total += x, BatchSize::SmallInput)
        });
        group.finish();
        assert!(total >= 10);
    }
}
