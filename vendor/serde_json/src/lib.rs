//! Offline, API-compatible subset of `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] data model to JSON text and
//! parses JSON text back. Covers the entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON serialization or deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// A specialized `Result` for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) -> Result<()> {
    if !f.is_finite() {
        return Err(Error::new("JSON cannot represent NaN or infinity"));
    }
    // `{}` on f64 is the shortest round-trippable decimal form.
    out.push_str(&f.to_string());
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_f64(out, *f)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0))?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Maximum container nesting, as in upstream serde_json: deeper input
/// returns a parse error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers beyond i128 (e.g. Display output of huge floats)
            // degrade to f64 rather than failing.
            text.parse::<i128>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number"))
            })
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.enter()?;
        let result = self.parse_array_body();
        self.depth -= 1;
        result
    }

    fn parse_array_body(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.enter()?;
        let result = self.parse_object_body();
        self.depth -= 1;
        result
    }

    fn parse_object_body(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n\"there\"").unwrap(), r#""hi\n\"there\"""#);
        assert_eq!(
            from_str::<String>(r#""hi\n\"there\"""#).unwrap(),
            "hi\n\"there\""
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, f64)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let evil = "[".repeat(100_000);
        let err = from_str::<Vec<u8>>(&evil).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
        // Wide-but-shallow and sibling containers still parse: depth is
        // released when a container closes.
        let wide = format!(
            "[{}]",
            (0..300).map(|_| "[0]").collect::<Vec<_>>().join(",")
        );
        assert!(from_str::<Vec<Vec<u8>>>(&wide).is_ok());
        let deep_ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<serde::Value>(&deep_ok).is_ok());
    }

    #[test]
    fn float_display_round_trips() {
        for &f in &[0.1, 1e-9, 12345.6789, 1e300, -2.5e-7] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }
}
