//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of proptest its property suites use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, range / tuple / `Just` /
//! `prop_oneof!` / `prop::collection::vec` / `any::<T>()` strategies, the
//! [`strategy::Strategy`] trait with `prop_map` and `boxed`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: sampling is driven by a deterministic
//! SplitMix64 stream derived from the test's module path and name (so
//! failures are exactly reproducible), and failing cases are **not
//! shrunk** — the failing inputs are reported as generated.

#![warn(missing_docs)]

/// Deterministic RNG used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG for one test case, derived from a label and index.
    pub fn for_case(label: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Run configuration, selected via `#![proptest_config(...)]`.
pub mod test_runner {
    /// Configuration for a property test run.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Upstream-compatible alias used inside `proptest!` blocks.
    pub type ProptestConfig = Config;

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fails the current case with a message.
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError(msg.to_string())
        }

        /// Rejects the current case (counted as skipped, not failed).
        pub fn reject(msg: impl std::fmt::Display) -> Self {
            TestCaseError(format!("rejected: {msg}"))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The result type of a property-test body.
    pub type TestCaseResult = std::result::Result<(), TestCaseError>;
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// String-literal strategies: a pragmatic subset of upstream's regex
    /// patterns. Supports sequences of literal characters and `[...]`
    /// classes (with `a-z` ranges), each optionally quantified by
    /// `{n}` / `{m,n}` / `?` / `+` / `*` (`+`/`*` capped at 8 repeats).
    impl Strategy for str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                // Parse one atom: a char class or a literal.
                let options: Vec<char> = if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {self:?}"));
                    let body = &chars[i + 1..close];
                    i = close + 1;
                    let mut opts = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            for c in body[j]..=body[j + 2] {
                                opts.push(c);
                            }
                            j += 3;
                        } else {
                            opts.push(body[j]);
                            j += 1;
                        }
                    }
                    opts
                } else {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    vec![c]
                };
                // Parse an optional quantifier.
                let (lo, hi) = match chars.get(i) {
                    Some('{') => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unclosed `{{` in pattern {self:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse::<usize>().expect("bad quantifier"),
                                n.trim().parse::<usize>().expect("bad quantifier"),
                            ),
                            None => {
                                let n = body.trim().parse::<usize>().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    Some('?') => {
                        i += 1;
                        (0, 1)
                    }
                    Some('+') => {
                        i += 1;
                        (1, 8)
                    }
                    Some('*') => {
                        i += 1;
                        (0, 8)
                    }
                    _ => (1, 1),
                };
                let count = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..count {
                    let pick = rng.below(options.len() as u64) as usize;
                    out.push(options[pick]);
                }
            }
            out
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Whole-domain strategy for a primitive type.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_prims {
        ($($t:ty => |$rng:ident| $expr:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, $rng: &mut TestRng) -> $t {
                    $expr
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_prims! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8 => |rng| rng.next_u64() as i8;
        i16 => |rng| rng.next_u64() as i16;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        isize => |rng| rng.next_u64() as isize;
        f64 => |rng| {
            // Mix of ordinary magnitudes and a few extremes.
            match rng.below(8) {
                0 => 0.0,
                1 => -(rng.unit_f64() * 1e9),
                _ => rng.unit_f64() * 1e9,
            }
        };
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `prop` re-export.
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config, ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (plain panic in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips a case when an assumption fails (continues to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|)? $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let label = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::for_case(label, case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                // One closure per case: `prop_assume!` returns Ok early and
                // `?` on TestCaseError propagates, exactly as upstream.
                #[allow(unused_mut)]
                let mut __case = || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    { $body }
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = __case() {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(2u32), (5u32..7).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || x == 2 || x == 50 || x == 60);
        }

        #[test]
        fn tuples_and_any(pair in (0u8..4, 0u8..4), flag in any::<bool>()) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::for_case("x", 1);
            (0..32).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::for_case("x", 1);
            (0..32).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
