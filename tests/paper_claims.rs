//! End-to-end integration tests of the paper's headline claims, driven
//! through the public facade (`hpcqc::prelude`). These mirror the bench
//! harness experiments at a smaller scale, so a regression anywhere in the
//! stack (cluster, scheduler, devices, strategies) surfaces here.

use hpcqc::prelude::*;
use hpcqc_simcore::time::{SimDuration, SimTime};

fn hybrid_loop(name: &str, nodes: u32, iters: u32, classical_secs: u64, shots: u32) -> JobSpec {
    let mut phases = Vec::new();
    for _ in 0..iters {
        phases.push(Phase::Classical(SimDuration::from_secs(classical_secs)));
        phases.push(Phase::Quantum(Kernel::sampling(shots)));
    }
    JobSpec::builder(name)
        .nodes(nodes)
        .walltime(SimDuration::from_hours(8))
        .phases(phases)
        .build()
}

fn run(strategy: Strategy, technology: Technology, workload: &Workload) -> Outcome {
    let scenario = Scenario::builder()
        .classical_nodes(16)
        .device(technology)
        .strategy(strategy)
        .seed(42)
        .build();
    FacilitySim::run(&scenario, workload).expect("valid scenario")
}

/// §3, Listing 1, superconducting direction: the QPU is the starved side.
#[test]
fn claim_coscheduling_starves_superconducting_qpu() {
    let w = Workload::from_jobs(vec![hybrid_loop("l1", 10, 6, 590, 1_000)]);
    let outcome = run(Strategy::CoSchedule, Technology::Superconducting, &w);
    let r = &outcome.stats.records()[0];
    let qpu_eff = r.qpu_seconds_used / r.qpu_seconds_allocated;
    assert!(
        qpu_eff < 0.05,
        "QPU must be <5% busy inside its exclusive hold, got {qpu_eff:.3}"
    );
}

/// §3, Listing 1, neutral-atom direction: the classical nodes starve.
#[test]
fn claim_coscheduling_starves_nodes_on_neutral_atoms() {
    let w = Workload::from_jobs(vec![hybrid_loop("l1", 10, 3, 300, 1_000)]);
    let outcome = run(Strategy::CoSchedule, Technology::NeutralAtom, &w);
    let r = &outcome.stats.records()[0];
    let node_eff = r.node_seconds_used / r.node_seconds_allocated;
    assert!(
        node_eff < 0.5,
        "nodes must idle through ≥30 min quantum phases, got {node_eff:.3}"
    );
}

/// Fig. 2: workflows hold resources only while using them.
#[test]
fn claim_workflows_eliminate_held_idle_resources() {
    let w = Workload::from_jobs(vec![hybrid_loop("wf", 8, 4, 120, 1_000)]);
    let outcome = run(Strategy::Workflow, Technology::NeutralAtom, &w);
    let r = &outcome.stats.records()[0];
    assert!(
        (r.node_seconds_allocated - r.node_seconds_used).abs() < 1.0,
        "workflow steps must not hold idle nodes"
    );
    // But they pay inter-step overhead.
    assert!(r.phase_wait > SimDuration::ZERO);
}

/// Fig. 3: VQPU sharing raises device utilization over co-scheduling for
/// short-kernel workloads with multiple tenants.
#[test]
fn claim_vqpus_raise_device_utilization() {
    let jobs: Vec<JobSpec> = (0..4)
        .map(|i| hybrid_loop(&format!("t{i}"), 4, 6, 120, 1_000))
        .collect();
    let w = Workload::from_jobs(jobs);
    let cosched = run(Strategy::CoSchedule, Technology::Superconducting, &w);
    let vqpu = run(Strategy::Vqpu { vqpus: 4 }, Technology::Superconducting, &w);
    assert!(
        vqpu.makespan < cosched.makespan,
        "interleaving must beat serialized exclusive holds ({} vs {})",
        vqpu.makespan,
        cosched.makespan
    );
    assert!(vqpu.mean_device_utilization() >= cosched.mean_device_utilization() * 0.99);
}

/// Fig. 4: malleability approaches workflow-level waste without paying
/// per-step queue passes.
#[test]
fn claim_malleability_cuts_waste_without_requeueing() {
    let w = Workload::from_jobs(vec![hybrid_loop("m", 12, 3, 300, 1_000)]);
    let cosched = run(Strategy::CoSchedule, Technology::NeutralAtom, &w);
    let malleable = run(
        Strategy::Malleable { min_nodes: 1 },
        Technology::NeutralAtom,
        &w,
    );
    let waste = |o: &Outcome| o.stats.total_node_hours_wasted();
    assert!(
        waste(&malleable) < 0.25 * waste(&cosched),
        "malleable waste {:.2} vs co-schedule {:.2}",
        waste(&malleable),
        waste(&cosched)
    );
    // Single-job semantics: turnaround does not balloon.
    assert!(
        malleable.stats.mean_turnaround_secs() <= cosched.stats.mean_turnaround_secs() * 1.05,
        "malleability must not slow the job on an idle machine"
    );
}

/// §4 complementarity: the advisor picks different strategies for the
/// paper's three canonical regimes.
#[test]
fn claim_advisor_matches_paper_guidance() {
    // Superconducting VQE: short kernels inside long classical steps.
    let vqe = recommend(&WorkloadProfile::new(10.0, 600.0, 900.0));
    assert!(matches!(vqe.strategy, Strategy::Vqpu { .. }), "{vqe:?}");
    // Neutral atoms: quantum outweighs a queue pass.
    let atoms = recommend(&WorkloadProfile::new(2_000.0, 600.0, 900.0));
    assert_eq!(atoms.strategy, Strategy::Workflow, "{atoms:?}");
    // Both phases short against queue waits.
    let short = recommend(&WorkloadProfile::new(50.0, 60.0, 1_200.0));
    assert!(
        matches!(short.strategy, Strategy::Malleable { .. }),
        "{short:?}"
    );
}

/// The strategies agree on purely classical workloads (no quantum phases
/// means nothing to interleave, decompose or shrink around).
#[test]
fn classical_workloads_are_strategy_invariant() {
    let jobs: Vec<JobSpec> = (0..5)
        .map(|i| {
            JobSpec::builder(format!("c{i}"))
                .nodes(4)
                .submit(SimTime::from_secs(i * 60))
                .walltime(SimDuration::from_hours(2))
                .phases(vec![Phase::Classical(SimDuration::from_secs(600))])
                .build()
        })
        .collect();
    let w = Workload::from_jobs(jobs);
    let outcomes: Vec<Outcome> = Strategy::representative_set()
        .into_iter()
        .map(|s| run(s, Technology::Superconducting, &w))
        .collect();
    let makespans: Vec<_> = outcomes.iter().map(|o| o.makespan).collect();
    assert!(
        makespans.windows(2).all(|p| p[0] == p[1]),
        "classical-only workloads must be identical across strategies: {makespans:?}"
    );
}
