//! Acceptance test for the committed dependability grid
//! (`examples/grids/faults.json`): under the committed fault intensity
//! (device outages + calibration drift + 5% transient kernel errors),
//! recovery rescues every job, fault-recovery wait is attributed, and at
//! least one strategy×route combination degrades *gracefully* — its
//! hybrid-turnaround slowdown is at most half the worst combination's.

use hpcqc::prelude::*;

fn committed_grid() -> Grid {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/grids/faults.json");
    let text = std::fs::read_to_string(path).expect("committed grid exists");
    let grid: Grid = serde_json::from_str(&text).expect("committed grid parses");
    grid.validate().expect("committed grid is valid");
    grid
}

/// One (strategy, fleet) combination's clean and faulted turnaround.
#[derive(Debug, Default, Clone, Copy)]
struct Combo {
    clean: f64,
    faulted: f64,
}

#[test]
fn committed_fault_grid_degrades_gracefully() {
    let grid = committed_grid();
    assert!(
        grid.faults.is_some(),
        "the committed grid must carry a faults axis"
    );
    let result = Executor::new(0)
        .run_sim_attributed(&grid)
        .expect("committed grid sweeps");

    let mut combos: std::collections::BTreeMap<String, Combo> = std::collections::BTreeMap::new();
    let mut fault_share_seen = false;
    for cell_result in result.results() {
        let cell = &cell_result.cell;
        let outcome = &cell_result.outcome;
        let plan = cell.faults.as_ref().expect("faults axis fills every cell");
        let shares = cell_result.shares.expect("attributed sweep has shares");

        // Recovery rescues every job: no cell loses work outright.
        assert_eq!(
            outcome.stats.failed_count(),
            0,
            "cell {} ({}, plan {}) failed jobs",
            cell.index,
            cell.strategy,
            plan.label()
        );

        let combo = format!(
            "{}/{}",
            cell.strategy,
            cell.fleet.as_ref().map_or("-", |f| f.name.as_str())
        );
        let turnaround = outcome.stats.hybrid_only().mean_turnaround_secs();
        let entry = combos.entry(combo).or_default();
        if plan.is_inert() {
            assert_eq!(
                shares.fault_frac, 0.0,
                "inert cells must book zero fault-recovery wait"
            );
            entry.clean = turnaround;
        } else {
            fault_share_seen |= shares.fault_frac > 0.0;
            entry.faulted = turnaround;
        }
    }
    assert!(
        fault_share_seen,
        "some faulted cell must attribute fault-recovery wait"
    );

    // Graceful degradation: the best combination's relative hybrid
    // slowdown is at most half the worst combination's.
    let drops: Vec<(String, f64)> = combos
        .into_iter()
        .map(|(name, combo)| {
            assert!(combo.clean > 0.0, "{name}: missing clean baseline");
            assert!(combo.faulted > 0.0, "{name}: missing faulted cell");
            (name, (combo.faulted - combo.clean) / combo.clean)
        })
        .collect();
    let worst = drops
        .iter()
        .map(|(_, d)| *d)
        .fold(f64::NEG_INFINITY, f64::max);
    let best = drops.iter().map(|(_, d)| *d).fold(f64::INFINITY, f64::min);
    assert!(
        worst > 0.0,
        "the committed intensity must actually degrade something: {drops:?}"
    );
    assert!(
        best <= 0.5 * worst,
        "no combination degrades gracefully (best {best:.4}, worst {worst:.4}): {drops:?}"
    );
}

#[test]
fn committed_fault_grid_inert_cells_match_faultless_grid() {
    // Stripping the faults axis and re-running must reproduce the inert
    // cells byte-for-byte: the axis machinery itself perturbs nothing.
    let grid = committed_grid();
    let mut faultless = grid.clone();
    faultless.faults = None;
    let with_axis = Executor::new(0).run_sim(&grid).expect("faulted grid runs");
    let without = Executor::new(0)
        .run_sim(&faultless)
        .expect("faultless grid runs");
    let inert: Vec<&CellResult> = with_axis
        .results()
        .iter()
        .filter(|r| r.cell.faults.as_ref().is_some_and(|p| p.is_inert()))
        .collect();
    assert_eq!(inert.len(), without.results().len());
    for (a, b) in inert.iter().zip(without.results()) {
        assert_eq!(
            serde_json::to_string(&a.outcome).unwrap(),
            serde_json::to_string(&b.outcome).unwrap(),
            "inert cell {} must match its faultless twin {}",
            a.cell.index,
            b.cell.index
        );
    }
}
