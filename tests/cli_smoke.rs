//! Smoke tests for the `hpcqc-sim` binary target: the manifests declare it,
//! so guard that it builds, parses `--help`, and rejects junk cleanly.

use std::process::Command;

#[test]
fn help_parses_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .arg("--help")
        .output()
        .expect("hpcqc-sim runs");
    assert!(out.status.success(), "--help must exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage:"), "help text missing: {stdout}");
    assert!(
        stdout.contains("co-schedule"),
        "strategies not listed: {stdout}"
    );
}

#[test]
fn no_args_shows_usage_and_fails() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2), "bare invocation must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage:"),
        "usage missing on stderr: {stderr}"
    );
}

#[test]
fn unknown_strategy_enumerates_and_hints() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--strategy", "workflw"])
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2), "bad strategy must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean `workflow`"),
        "missing hint: {stderr}"
    );
    for form in [
        "co-schedule",
        "workflow",
        "vqpu:N",
        "malleable:N",
        "adaptive",
    ] {
        assert!(
            stderr.contains(form),
            "valid strategy `{form}` not enumerated: {stderr}"
        );
    }
}

#[test]
fn adaptive_strategy_parses() {
    // `adaptive` and `adaptive:N` must both be accepted; a junk trace is
    // rejected *after* strategy parsing, so exit 1 (not the arg-error 2).
    for spec in ["adaptive", "adaptive:8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
            .args(["run", "--workload", "/nonexistent.hqwf", "--strategy", spec])
            .output()
            .expect("hpcqc-sim runs");
        assert_eq!(out.status.code(), Some(1), "`{spec}` must parse: {out:?}");
    }
}

#[test]
fn advise_prints_recommendation_and_rationale() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args([
            "advise",
            "--quantum-secs",
            "1800",
            "--classical-secs",
            "300",
            "--queue-wait-secs",
            "600",
        ])
        .output()
        .expect("hpcqc-sim runs");
    assert!(out.status.success(), "advise failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("recommended strategy: workflow"),
        "long quantum phases must get workflow: {stdout}"
    );
    assert!(stdout.contains("rationale"), "rationale missing: {stdout}");
}

#[test]
fn advise_requires_the_three_profile_numbers() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["advise", "--quantum-secs", "10"])
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--classical-secs"), "{stderr}");
}

fn spec_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/gen/day_small.json")
}

#[test]
fn gen_demand_summarizes_the_spec() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["gen", "--spec"])
        .arg(spec_path())
        .arg("--demand")
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "gen --demand failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("jobs/hour"), "{stdout}");
    assert!(stdout.contains("day-small"), "{stdout}");
}

#[test]
fn gen_streams_a_trace_then_run_consumes_it() {
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_gen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("gen.hqwf");
    let gen = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["gen", "--spec"])
        .arg(spec_path())
        .args(["--seed", "3", "--jobs", "40", "--out"])
        .arg(&trace)
        .output()
        .expect("gen runs");
    assert!(gen.status.success(), "gen failed: {gen:?}");
    let stderr = String::from_utf8_lossy(&gen.stderr);
    assert!(stderr.contains("generated 40 jobs"), "{stderr}");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert_eq!(text.lines().count(), 42, "2 header lines + 40 jobs");
    let run = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(&trace)
        .args(["--strategy", "vqpu:2", "--nodes", "64"])
        .output()
        .expect("run runs");
    assert!(
        run.status.success(),
        "run on generated trace failed: {run:?}"
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn run_streams_a_generator_source() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--source"])
        .arg(format!("gen:{}", spec_path().display()))
        .args(["--strategy", "vqpu:4", "--nodes", "64", "--seed", "7"])
        .output()
        .expect("run runs");
    assert!(out.status.success(), "streamed run failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("peak in-flight"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vqpu(x4)"), "{stdout}");
}

#[test]
fn run_rejects_trace_source_conflicts_and_bad_source() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--source", "gen:y.json"])
        .output()
        .expect("run runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--source", "nope:y.json"])
        .output()
        .expect("run runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("gen:<spec.json>"));
}

#[test]
fn gen_hints_on_typoed_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["gen", "--spce", "x.json"])
        .output()
        .expect("gen runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("did you mean `--spec`"));
}

#[test]
fn generate_then_run_round_trips() {
    // Unique per process so concurrent test runs don't race on the file.
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("smoke.hqwf");
    let gen = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["generate", "--count", "5", "--seed", "3", "--out"])
        .arg(&trace)
        .output()
        .expect("generate runs");
    assert!(gen.status.success(), "generate failed: {gen:?}");
    let run = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(&trace)
        .args(["--strategy", "vqpu:2", "--nodes", "64"])
        .output()
        .expect("run runs");
    assert!(run.status.success(), "run failed: {run:?}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn unknown_policy_enumerates_and_hints() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--policy", "quantum-awre"])
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2), "bad policy must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean `quantum-aware`"),
        "missing hint: {stderr}"
    );
    for form in [
        "fcfs",
        "easy[-backfill]",
        "conservative[-backfill]",
        "priority-backfill[:age=H]",
        "quantum-aware[:boost=P]",
    ] {
        assert!(
            stderr.contains(form),
            "valid policy `{form}` not enumerated: {stderr}"
        );
    }
}

#[test]
fn new_policies_parse_with_and_without_knobs() {
    // A junk trace is rejected *after* policy parsing, so exit 1 (not the
    // arg-error 2).
    for spec in [
        "priority-backfill",
        "priority-backfill:age=20",
        "quantum-aware",
        "quantum-aware:boost=500",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
            .args(["run", "--workload", "/nonexistent.hqwf", "--policy", spec])
            .output()
            .expect("hpcqc-sim runs");
        assert_eq!(out.status.code(), Some(1), "`{spec}` must parse: {out:?}");
    }
    // A malformed knob is an argument error.
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args([
            "run",
            "--workload",
            "x.hqwf",
            "--policy",
            "priority-backfill:age=zero",
        ])
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2), "bad knob must exit 2: {out:?}");
}

#[test]
fn priority_knob_flags_are_validated() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--fairshare-half-life", "-5"])
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("positive"));
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--age-weight", "lots"])
        .output()
        .expect("hpcqc-sim runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("finite number"));
}

fn contended_workload() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/workloads/contended.hqwf")
}

#[test]
fn run_trace_output_is_perfetto_valid_and_byte_identical() {
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let record = |path: &std::path::Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
            .args(["run", "--workload"])
            .arg(contended_workload())
            .arg("--trace")
            .arg(path)
            .output()
            .expect("run runs");
        assert!(out.status.success(), "traced run failed: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("wrote trace"), "{stderr}");
        std::fs::read_to_string(path).expect("trace written")
    };
    let first = record(&dir.join("a.json"));
    let second = record(&dir.join("b.json"));
    assert_eq!(first, second, "same-seed traces must be byte-identical");
    hpcqc::trace::chrome::check_json(&first).expect("trace-event JSON parses");
    for track in ["scheduler", "devices", "jobs", "qpu0"] {
        assert!(first.contains(track), "missing track `{track}`");
    }
    for counter in hpcqc::trace::COUNTER_TRACKS {
        assert!(first.contains(counter), "missing counter `{counter}`");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_metrics_output_in_csv_and_json() {
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("m.csv");
    let json_path = dir.join("m.json");
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(contended_workload())
        .arg("--metrics")
        .arg(&csv_path)
        .args(["--metrics-interval", "600"])
        .output()
        .expect("run runs");
    assert!(out.status.success(), "{out:?}");
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.starts_with("t_s,"), "header row missing: {csv}");
    assert!(csv.contains("jobs_started"), "{csv}");
    assert!(csv.lines().count() > 2, "expected multiple samples: {csv}");
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(contended_workload())
        .arg("--metrics")
        .arg(&json_path)
        .output()
        .expect("run runs");
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    hpcqc::trace::chrome::check_json(&json).expect("metrics JSON parses");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_profile_reports_cycle_phases() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(contended_workload())
        .arg("--profile")
        .output()
        .expect("run runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("scheduler profile:"), "{stderr}");
    for phase in ["order", "admit", "allocate", "cycle total"] {
        assert!(stderr.contains(phase), "phase `{phase}` missing: {stderr}");
    }
}

#[test]
fn run_hints_when_trace_is_used_as_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--trace", "old-style.hqwf"])
        .output()
        .expect("run runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--workload"),
        "migration hint missing: {stderr}"
    );
}

#[test]
fn run_instrumentation_conflicts_with_compare() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--compare", "--profile"])
        .output()
        .expect("run runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--compare"));
}

fn hetero_fleet() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/fleets/hetero.json")
}

#[test]
fn devices_lists_the_fleet_without_running() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .arg("devices")
        .arg("--fleet")
        .arg(hetero_fleet())
        .output()
        .expect("devices runs");
    assert!(out.status.success(), "devices failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("route"), "route line missing: {stdout}");
    for column in ["device", "technology", "qubits", "status"] {
        assert!(
            stdout.contains(column),
            "column `{column}` missing: {stdout}"
        );
    }
    for device in ["helios-sc", "ares-ion"] {
        assert!(
            stdout.contains(device),
            "device `{device}` missing: {stdout}"
        );
    }
}

#[test]
fn devices_rejects_a_malformed_fleet_file() {
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_badfleet_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{ \"name\": \"broken\", \"devices\": [").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .arg("devices")
        .arg("--fleet")
        .arg(&path)
        .output()
        .expect("devices runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed fleet must exit 2: {out:?}"
    );
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("panicked"),
        "must not panic on a malformed fleet: {out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn devices_hints_on_typoed_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["devices", "--flete", "x.json"])
        .output()
        .expect("devices runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("did you mean `--fleet`"));
}

#[test]
fn explain_blames_the_queue_wait_by_cause() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["explain", "--workload"])
        .arg(contended_workload())
        .args(["--by", "cause", "--format", "csv"])
        .output()
        .expect("explain runs");
    assert!(out.status.success(), "explain failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("cause,wait_s,share"),
        "cause columns missing: {stdout}"
    );
    assert!(
        stdout.contains("qpu-contention"),
        "qpu-contention row missing on the contended workload: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("attributed") && stderr.contains("QPU-contention share"),
        "summary line missing: {stderr}"
    );
}

#[test]
fn explain_rejects_unknown_by_dimension() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["explain", "--workload", "x.hqwf", "--by", "vibes"])
        .output()
        .expect("explain runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cause | tenant | device"), "{stderr}");
}

#[test]
fn run_attribution_writes_the_blame_table() {
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_attr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blame.csv");
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(contended_workload())
        .arg("--attribution")
        .arg(&path)
        .output()
        .expect("run runs");
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("wrote wait attribution"),
        "{out:?}"
    );
    let csv = std::fs::read_to_string(&path).unwrap();
    assert!(csv.starts_with("cause,wait_s,share"), "{csv}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_file_with_broken_policy_knobs_fails_gracefully() {
    use hpcqc::prelude::*;
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_badpolicy_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A real trace, so the run gets past input loading to the scenario.
    let trace = dir.join("tiny.hqwf");
    let gen = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["generate", "--count", "5", "--seed", "1", "--out"])
        .arg(&trace)
        .output()
        .expect("generate runs");
    assert!(gen.status.success(), "{gen:?}");
    // A scenario whose policy knobs serde cannot reject.
    let mut scenario = Scenario::default();
    scenario.policy.fairshare_half_life_secs = 0.0;
    let path = dir.join("bad.json");
    std::fs::write(&path, serde_json::to_string_pretty(&scenario).unwrap()).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--nodes", "64", "--workload"])
        .arg(&trace)
        .arg("--scenario")
        .arg(&path)
        .output()
        .expect("hpcqc-sim runs");
    // The broken knob must produce a graceful failure, never a panic.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid scenario policy"),
        "expected the policy validation error: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must not panic on a bad scenario policy: {stderr}"
    );
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&path).ok();
}

fn degraded_fault_plan() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/faults/degraded.json")
}

#[test]
fn run_accepts_a_fault_plan() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(contended_workload())
        .arg("--faults")
        .arg(degraded_fault_plan())
        .output()
        .expect("run runs");
    assert!(out.status.success(), "faulted run failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fault plan `degraded`"),
        "fault plan line missing: {stderr}"
    );
}

#[test]
fn run_rejects_a_malformed_fault_plan_with_line_info() {
    let dir = std::env::temp_dir().join(format!("hpcqc_cli_badfaults_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{\n  \"name\": \"broken\",\n  \"device\": [\n").unwrap();
    // A real workload, so the run gets past input loading to the plan.
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload"])
        .arg(contended_workload())
        .arg("--faults")
        .arg(&path)
        .output()
        .expect("run runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed fault plan must exit 2: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot parse fault plan") && stderr.contains("line"),
        "parse error must point at the line: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must not panic on a malformed fault plan: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_hints_on_typoed_faults_flag() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["run", "--workload", "x.hqwf", "--fualts", "plan.json"])
        .output()
        .expect("run runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("did you mean `--faults`"),
        "{out:?}"
    );
}

#[test]
fn sweep_hints_on_typoed_faults_flag() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .args(["sweep", "--grid", "x.json", "--fault", "plan.json"])
        .output()
        .expect("sweep runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("did you mean `--faults`"),
        "{out:?}"
    );
}

#[test]
fn faults_subcommand_describes_the_plan() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .arg("faults")
        .arg("--plan")
        .arg(degraded_fault_plan())
        .output()
        .expect("faults runs");
    assert!(out.status.success(), "faults subcommand failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("fault plan `degraded`: active"),
        "summary line missing: {stdout}"
    );
    for needle in [
        "process",
        "outage",
        "drift",
        "kernel error rate",
        "recovery",
    ] {
        assert!(stdout.contains(needle), "`{needle}` missing: {stdout}");
    }
}

#[test]
fn faults_subcommand_requires_exactly_one_source() {
    let out = Command::new(env!("CARGO_BIN_EXE_hpcqc-sim"))
        .arg("faults")
        .output()
        .expect("faults runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--plan"), "{stderr}");
}
