//! Golden-file regression guard for the simulation core.
//!
//! The committed fixture `tests/fixtures/smoke_grid.csv` pins the output
//! of `examples/grids/smoke.json` — all four paper strategies over two
//! load levels — as produced by the pre-driver/observer-refactor
//! simulator (the refactor was verified byte-identical against the
//! pre-refactor binary on this grid and the full 48-cell crossover grid
//! before the fixture was committed). Asserting byte-identical output
//! keeps every future refactor honest: results cannot silently drift.
//!
//! If a change is *supposed* to alter results (a new model, a fixed bug
//! in the physics), regenerate the fixture and say so in the PR:
//!
//! ```text
//! cargo run --release --bin hpcqc-sim -- sweep \
//!     --grid examples/grids/smoke.json --format csv \
//!     --out tests/fixtures/smoke_grid.csv
//! ```

use hpcqc::prelude::*;

fn load_smoke_grid() -> Grid {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/grids/smoke.json");
    let text = std::fs::read_to_string(path).expect("smoke grid exists");
    let grid: Grid = serde_json::from_str(&text).expect("smoke grid parses");
    grid.validate().expect("smoke grid is valid");
    grid
}

const GOLDEN: &str = include_str!("fixtures/smoke_grid.csv");

#[test]
fn smoke_grid_csv_matches_golden_fixture() {
    let grid = load_smoke_grid();
    let result = Executor::new(2).run_sim(&grid).expect("smoke grid runs");
    let csv = result.to_csv();
    assert!(
        csv == GOLDEN,
        "smoke-grid CSV drifted from the golden fixture.\n\
         If the change is intentional, regenerate tests/fixtures/smoke_grid.csv \
         (see this file's header) and explain the drift in the PR.\n\
         --- golden ---\n{GOLDEN}\n--- current ---\n{csv}"
    );
}

#[test]
fn golden_output_is_thread_count_invariant() {
    let grid = load_smoke_grid();
    for threads in [1, 4] {
        let csv = Executor::new(threads)
            .run_sim(&grid)
            .expect("smoke grid runs")
            .to_csv();
        assert_eq!(csv, GOLDEN, "drift at {threads} threads");
    }
}
