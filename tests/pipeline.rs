//! Cross-crate pipeline tests: trace round-trips feeding the simulator,
//! policy ablations, failure injection, and full-pipeline determinism.

use hpcqc::prelude::*;
use hpcqc_simcore::time::{SimDuration, SimTime};
use hpcqc_workload::trace;

fn mixed_workload(seed: u64) -> Workload {
    Workload::builder()
        .class(
            JobClass::new("mpi", Pattern::classical(1_200.0))
                .weight(2.0)
                .nodes_between(2, 8),
        )
        .class(
            JobClass::new("vqe", Pattern::vqe(6, 60.0, Kernel::sampling(1_000)))
                .nodes_between(1, 4)
                .quantum_estimate_secs(15.0),
        )
        .arrival(ArrivalProcess::poisson_per_hour(30.0))
        .count(40)
        .generate(seed)
}

fn scenario(strategy: Strategy, policy: PolicySpec) -> Scenario {
    Scenario::builder()
        .classical_nodes(24)
        .device(Technology::Superconducting)
        .strategy(strategy)
        .policy(policy)
        .seed(5)
        .build()
}

/// A workload serialized to both trace formats and re-imported produces an
/// identical simulation — the archival path is faithful.
#[test]
fn trace_roundtrip_preserves_simulation() {
    let original = mixed_workload(7);
    let sc = scenario(Strategy::Vqpu { vqpus: 4 }, PolicySpec::easy());
    let baseline = FacilitySim::run(&sc, &original).unwrap();

    let via_json = trace::from_json(&trace::to_json(&original).unwrap()).unwrap();
    let json_outcome = FacilitySim::run(&sc, &via_json).unwrap();
    assert_eq!(baseline.makespan, json_outcome.makespan);
    assert_eq!(
        baseline.stats.mean_turnaround_secs(),
        json_outcome.stats.mean_turnaround_secs()
    );

    // HQWF quantizes durations to milliseconds; the sim must still agree to
    // well under a second per job.
    let via_hqwf = trace::from_hqwf(&trace::to_hqwf(&original)).unwrap();
    let hqwf_outcome = FacilitySim::run(&sc, &via_hqwf).unwrap();
    let drift = (baseline.makespan.as_secs_f64() - hqwf_outcome.makespan.as_secs_f64()).abs();
    assert!(drift < 1.0, "HQWF round-trip drifted {drift} s");
}

/// Backfilling matters: EASY strictly reduces mean wait on a contended mix.
///
/// EASY only reserves for the queue *head*, so a backfilled job can delay
/// non-head jobs and the makespan may drift slightly past strict FCFS on
/// some traces — that is correct behaviour, not a regression. We therefore
/// assert the guarantee EASY actually makes (shorter waits) and bound the
/// makespan drift instead of forbidding it.
#[test]
fn backfilling_improves_on_fcfs() {
    let w = mixed_workload(11);
    let fcfs = FacilitySim::run(&scenario(Strategy::Workflow, PolicySpec::fcfs()), &w).unwrap();
    let easy = FacilitySim::run(&scenario(Strategy::Workflow, PolicySpec::easy()), &w).unwrap();
    assert!(
        easy.makespan.as_secs_f64() <= fcfs.makespan.as_secs_f64() * 1.05,
        "EASY ({}) extended the FCFS makespan ({}) by more than 5%",
        easy.makespan,
        fcfs.makespan
    );
    assert!(
        easy.stats.mean_wait_secs() < fcfs.stats.mean_wait_secs(),
        "EASY must strictly reduce mean wait ({:.1}s vs {:.1}s)",
        easy.stats.mean_wait_secs(),
        fcfs.stats.mean_wait_secs()
    );
}

/// Conservative backfill also runs the full pipeline to completion.
#[test]
fn conservative_backfill_completes() {
    let w = mixed_workload(13);
    let out = FacilitySim::run(
        &scenario(Strategy::CoSchedule, PolicySpec::conservative()),
        &w,
    )
    .unwrap();
    assert_eq!(out.stats.len(), w.len());
}

/// Device recalibration windows lengthen campaigns but never lose jobs.
#[test]
fn device_calibration_slows_but_completes() {
    let jobs: Vec<JobSpec> = (0..6)
        .map(|i| {
            JobSpec::builder(format!("h{i}"))
                .nodes(2)
                .submit(SimTime::from_secs(i * 30_000)) // spread over days
                .walltime(SimDuration::from_hours(8))
                .phases(vec![
                    Phase::Classical(SimDuration::from_secs(300)),
                    Phase::Quantum(Kernel::sampling(1_000)),
                ])
                .build()
        })
        .collect();
    let w = Workload::from_jobs(jobs);
    let mut with_cal = scenario(Strategy::CoSchedule, PolicySpec::easy());
    with_cal.device_calibration = true;
    let calibrated = FacilitySim::run(&with_cal, &w).unwrap();
    assert_eq!(calibrated.stats.len(), 6);
    assert!(
        calibrated.devices[0].recalibration_seconds > 0.0,
        "multi-day campaign must hit recalibration windows"
    );
}

/// Cloud access (E7 path) through the full simulator: turnaround grows by
/// roughly the per-kernel overhead × kernel count.
#[test]
fn cloud_access_cost_scales_with_kernel_count() {
    let few = Workload::from_jobs(vec![{
        let mut phases = Vec::new();
        for _ in 0..2 {
            phases.push(Phase::Classical(SimDuration::from_secs(60)));
            phases.push(Phase::Quantum(Kernel::sampling(1_000)));
        }
        JobSpec::builder("few")
            .nodes(2)
            .walltime(SimDuration::from_hours(8))
            .phases(phases)
            .build()
    }]);
    let many = Workload::from_jobs(vec![{
        let mut phases = Vec::new();
        for _ in 0..8 {
            phases.push(Phase::Classical(SimDuration::from_secs(60)));
            phases.push(Phase::Quantum(Kernel::sampling(1_000)));
        }
        JobSpec::builder("many")
            .nodes(2)
            .walltime(SimDuration::from_hours(8))
            .phases(phases)
            .build()
    }]);
    let overhead_of = |w: &Workload| {
        let mut cloud = scenario(Strategy::CoSchedule, PolicySpec::easy());
        cloud.access = Some(AccessMode::cloud(Technology::Superconducting));
        let on_prem = scenario(Strategy::CoSchedule, PolicySpec::easy());
        let with = FacilitySim::run(&cloud, w)
            .unwrap()
            .stats
            .mean_turnaround_secs();
        let without = FacilitySim::run(&on_prem, w)
            .unwrap()
            .stats
            .mean_turnaround_secs();
        with - without
    };
    let few_overhead = overhead_of(&few);
    let many_overhead = overhead_of(&many);
    assert!(
        many_overhead > 2.0 * few_overhead,
        "8 kernels must pay ≳4× the cloud overhead of 2 ({many_overhead:.0}s vs {few_overhead:.0}s)"
    );
}

/// The full pipeline (generation → scheduling → devices → metrics) is
/// byte-stable across runs and across strategies for the same seed.
#[test]
fn full_pipeline_determinism() {
    for strategy in Strategy::representative_set() {
        let w = mixed_workload(3);
        let sc = scenario(strategy, PolicySpec::easy());
        let a = FacilitySim::run(&sc, &w).unwrap();
        let b = FacilitySim::run(&sc, &w).unwrap();
        assert_eq!(a.makespan, b.makespan, "{strategy}");
        assert_eq!(a.total_kernels(), b.total_kernels(), "{strategy}");
        assert_eq!(
            a.stats.mean_bounded_slowdown(),
            b.stats.mean_bounded_slowdown(),
            "{strategy}"
        );
    }
}

/// A facility with several physical QPUs spreads kernels across them
/// (round-robin over gres tokens / least-backlog for malleable jobs).
#[test]
fn multi_device_facility_spreads_kernels() {
    let jobs: Vec<JobSpec> = (0..6)
        .map(|i| {
            let mut phases = Vec::new();
            for _ in 0..4 {
                phases.push(Phase::Classical(SimDuration::from_secs(60)));
                phases.push(Phase::Quantum(Kernel::sampling(1_000)));
            }
            JobSpec::builder(format!("t{i}"))
                .nodes(2)
                .walltime(SimDuration::from_hours(8))
                .phases(phases)
                .build()
        })
        .collect();
    let w = Workload::from_jobs(jobs);
    for strategy in [
        Strategy::CoSchedule,
        Strategy::Vqpu { vqpus: 3 },
        Strategy::Malleable { min_nodes: 1 },
    ] {
        let mut sc = scenario(strategy, PolicySpec::easy());
        sc.devices = vec![Technology::Superconducting, Technology::Superconducting];
        let out = FacilitySim::run(&sc, &w).unwrap();
        assert_eq!(out.total_kernels(), 24, "{strategy}");
        for d in &out.devices {
            assert!(d.tasks > 0, "{strategy}: device {} never used", d.name);
        }
    }
}

/// Node failures flow through the full pipeline: jobs requeue and the
/// campaign still completes (or records bounded failures).
#[test]
fn node_failures_end_to_end() {
    let w = mixed_workload(17);
    let mut sc = scenario(Strategy::CoSchedule, PolicySpec::easy());
    sc.node_failures = Some(FailureModel::exponential(7_200.0));
    let out = FacilitySim::run(&sc, &w).unwrap();
    assert_eq!(out.stats.len(), w.len(), "every job must terminate");
    // With a generous default budget, most of the mix completes.
    assert!(
        out.stats.completed_count() >= w.len() - 3,
        "too many failures: {} of {}",
        out.stats.failed_count(),
        w.len()
    );
}

/// Heterogeneous facility: a small spin-qubit device (12 qubits) next to a
/// large superconducting one (127). Jobs with big kernels must route only
/// to the capable device; small kernels may use either.
#[test]
fn heterogeneous_devices_respect_qubit_capability() {
    let big_kernel = Kernel::builder("big")
        .qubits(64)
        .depth(32)
        .shots(500)
        .build()
        .unwrap();
    let small_kernel = Kernel::builder("small")
        .qubits(8)
        .depth(32)
        .shots(500)
        .build()
        .unwrap();
    let mk = |name: &str, kernel: &Kernel, n: u64| -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::builder(format!("{name}-{i}"))
                    .nodes(2)
                    .walltime(SimDuration::from_hours(8))
                    .phases(vec![
                        Phase::Classical(SimDuration::from_secs(30)),
                        Phase::Quantum(kernel.clone()),
                    ])
                    .build()
            })
            .collect()
    };
    let mut jobs = mk("big", &big_kernel, 4);
    jobs.extend(mk("small", &small_kernel, 4));
    let w = Workload::from_jobs(jobs);
    for strategy in [Strategy::CoSchedule, Strategy::Malleable { min_nodes: 1 }] {
        let mut sc = scenario(strategy, PolicySpec::easy());
        sc.devices = vec![Technology::SpinQubit, Technology::Superconducting];
        let out = FacilitySim::run(&sc, &w).unwrap();
        assert_eq!(out.stats.len(), 8, "{strategy}");
        assert_eq!(out.stats.failed_count(), 0, "{strategy}");
        assert_eq!(out.total_kernels(), 8, "{strategy}");
        // The 64-qubit kernels cannot have run on the 12-qubit device, so
        // the superconducting device must have executed at least those 4.
        let sc_dev = out
            .devices
            .iter()
            .find(|d| d.technology == Technology::Superconducting);
        assert!(sc_dev.unwrap().tasks >= 4, "{strategy}");
    }
}

/// A facility whose only device is too small for a job's kernels must
/// reject that job with a clear error instead of panicking mid-run.
#[test]
fn impossible_kernel_is_a_clean_error() {
    let kernel = Kernel::builder("huge")
        .qubits(4_096)
        .depth(8)
        .shots(10)
        .build()
        .unwrap();
    let job = JobSpec::builder("huge")
        .nodes(1)
        .walltime(SimDuration::from_hours(1))
        .phases(vec![Phase::Quantum(kernel)])
        .build();
    let sc = scenario(Strategy::CoSchedule, PolicySpec::easy());
    let err = FacilitySim::run(&sc, &Workload::from_jobs(vec![job])).unwrap_err();
    assert!(
        err.to_string().contains("qubits"),
        "unexpected error: {err}"
    );
}

/// Different seeds genuinely change the workload and the outcome.
#[test]
fn seeds_matter() {
    let sc = scenario(Strategy::CoSchedule, PolicySpec::easy());
    let a = FacilitySim::run(&sc, &mixed_workload(1)).unwrap();
    let b = FacilitySim::run(&sc, &mixed_workload(2)).unwrap();
    assert_ne!(a.makespan, b.makespan);
}
