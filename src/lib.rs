//! # hpcqc — hybrid HPC–quantum cluster scheduling simulator
//!
//! A full reproduction of *Assessing the Elephant in the Room in Scheduling
//! for Current Hybrid HPC-QC Clusters* (DSN 2025): a discrete-event
//! simulator of an operational HPC facility with attached quantum devices,
//! a SLURM-like batch scheduler, per-technology QPU timing models, and the
//! paper's four resource-allocation strategies (exclusive co-scheduling,
//! loosely-coupled workflows, virtual QPUs, malleability).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. Use the pieces directly for finer dependency control.
//!
//! ```
//! use hpcqc::core::{FacilitySim, Scenario, Strategy};
//! use hpcqc::qpu::Technology;
//! use hpcqc::workload::{JobClass, Pattern, Workload};
//! use hpcqc::qpu::Kernel;
//!
//! let workload = Workload::builder()
//!     .class(JobClass::new("vqe", Pattern::vqe(8, 60.0, Kernel::sampling(1_000))))
//!     .count(10)
//!     .generate(7);
//! let scenario = Scenario::builder()
//!     .classical_nodes(16)
//!     .device(Technology::Superconducting)
//!     .strategy(Strategy::Vqpu { vqpus: 4 })
//!     .build();
//! let outcome = FacilitySim::run(&scenario, &workload)?;
//! println!("QPU utilization: {:.1}%", outcome.mean_device_utilization() * 100.0);
//! # Ok::<(), hpcqc::core::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use hpcqc_cluster as cluster;
pub use hpcqc_core as core;
pub use hpcqc_faults as faults;
pub use hpcqc_fleet as fleet;
pub use hpcqc_gen as gen;
pub use hpcqc_metrics as metrics;
pub use hpcqc_qpu as qpu;
pub use hpcqc_sched as sched;
pub use hpcqc_simcore as simcore;
pub use hpcqc_sweep as sweep;
pub use hpcqc_trace as trace;
pub use hpcqc_workload as workload;

/// Everything an application typically needs, one import away.
pub mod prelude {
    pub use hpcqc_cluster::{AllocRequest, Cluster, ClusterBuilder, GresKind, GroupRequest};
    pub use hpcqc_core::{
        driver_for, recommend, FacilitySim, FailureModel, IterSource, JobSource, Outcome,
        PhaseKind, Scenario, SimCtx, SimError, SimEvent, SimObserver, SliceSource, Strategy,
        StrategyDriver, SubmissionPlan, WalltimePolicy, WorkloadProfile,
    };
    pub use hpcqc_faults::{
        CheckpointSpec, DeviceFaults, DriftModel, FaultPlan, NodeFaults, RecoverySpec,
    };
    pub use hpcqc_fleet::{
        DeviceId, FleetCtx, FleetDevice, FleetSpec, QpuFleet, RoutePolicy, RouteSpec, ALL_ROUTES,
        ROUTE_FORMS,
    };
    pub use hpcqc_gen::{
        ClassSpec, GeneratorSpec, Horizon, IntensityProfile, JobStream, TenantModel,
    };
    pub use hpcqc_metrics::{fmt_pct, fmt_secs, GanttRecorder, JobStats, Table};
    pub use hpcqc_qpu::{AccessMode, Kernel, QpuDevice, Technology};
    pub use hpcqc_sched::{
        BatchScheduler, CyclePhase, CycleProbe, Discipline, HoldReason, NoProbe, PendingJob,
        PolicySpec, PriorityCalculator, PriorityWeights, QueuePolicy, SchedCtx, Verdict,
    };
    pub use hpcqc_simcore::{Dist, SimDuration, SimRng, SimTime};
    pub use hpcqc_sweep::{
        AccessSpec, Cell, CellResult, CellRow, CellTiming, Executor, Grid, GridBuilder, SweepError,
        SweepResult, WorkloadSpec,
    };
    pub use hpcqc_trace::{
        AttributionObserver, ChromeTrace, JobLedger, MetricsObserver, MetricsRegistry,
        SchedProfiler, TraceObserver, WaitInterval,
    };
    pub use hpcqc_workload::{
        ArrivalProcess, JobClass, JobSpec, Pattern, Phase, Workload, WorkloadError,
    };
}
