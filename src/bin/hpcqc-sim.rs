//! `hpcqc-sim` — run hybrid HPC-QC scheduling scenarios from the command
//! line.
//!
//! ```text
//! # Generate a synthetic workload trace (builder mix)
//! hpcqc-sim generate --count 200 --seed 7 --out campaign.hqwf
//!
//! # Synthesize a facility-scale trace from a declarative generator spec
//! hpcqc-sim gen --spec examples/gen/day_small.json --seed 7 --out day.hqwf
//!
//! # Simulate a workload under one strategy
//! hpcqc-sim run --workload campaign.hqwf --strategy vqpu:4 --nodes 64 \
//!               --device superconducting --policy easy
//!
//! # Stream a generated facility through the simulator (constant memory —
//! # the workload is never materialized)
//! hpcqc-sim run --source gen:examples/gen/day_small.json --strategy vqpu:4 \
//!               --nodes 256
//!
//! # Record observability artifacts: a Perfetto-loadable Chrome trace,
//! # a metrics time-series, and a scheduler wall-clock profile
//! hpcqc-sim run --workload campaign.hqwf --trace out.json \
//!               --metrics out.csv --metrics-interval 60 --profile
//!
//! # Explain who pays the queue wait: a per-cause wait-attribution table
//! hpcqc-sim explain --workload campaign.hqwf --by cause --format markdown
//!
//! # Inject faults (device outages, calibration drift, transient kernel
//! # errors) and recover from them per the plan's recovery policy
//! hpcqc-sim run --workload campaign.hqwf --faults plan.json
//!
//! # Inspect a dependability plan without running anything
//! hpcqc-sim faults --plan plan.json
//!
//! # Compare all four strategies on the same workload
//! hpcqc-sim run --workload campaign.hqwf --compare --device neutral-atom
//!
//! # Archive / inspect a scenario as JSON
//! hpcqc-sim run --workload campaign.hqwf --scenario scenario.json
//!
//! # Run a declarative parameter sweep across all cores
//! hpcqc-sim sweep --grid examples/grids/crossover.json --threads 8 --format csv
//!
//! # Ask the paper's §4 advisor which strategy fits a workload profile
//! hpcqc-sim advise --quantum-secs 10 --classical-secs 300 --queue-wait-secs 600
//! ```
//!
//! Workloads are read as HQWF (`.hqwf`, see `hpcqc_workload::trace`) or
//! JSON (anything else). `--scenario` loads a full [`Scenario`] as JSON;
//! individual flags override its fields. `--source gen:<spec.json>` runs a
//! `hpcqc_gen::GeneratorSpec` stream (seeded by `--seed`) instead of a
//! workload file. `--trace` writes a Chrome trace-event JSON timeline
//! (open it at <https://ui.perfetto.dev> or `chrome://tracing`).

use hpcqc::prelude::*;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str =
    "usage:\n  hpcqc-sim generate --count N [--seed S] [--out FILE] [--hybrid-share F]\n  \
     hpcqc-sim gen --spec FILE.json [--seed S] [--jobs N] [--format hqwf|json]\n              \
     [--out FILE] [--demand]\n  \
     hpcqc-sim run (--workload FILE | --source gen:FILE.json) [--scenario FILE.json]\n            \
     [--strategy S] [--nodes N] [--device TECH] [--policy P] [--seed S]\n            \
     [--fleet FILE.json] [--route R] [--faults FILE.json]\n            \
     [--age-weight F] [--size-weight F] [--fairshare-weight F]\n            \
     [--fairshare-half-life SECS] [--compare] [--gantt]\n            \
     [--trace OUT.json] [--metrics OUT.csv|OUT.json]\n            \
     [--metrics-interval SECS] [--profile] [--attribution OUT]\n  \
     hpcqc-sim explain (--workload FILE | --source gen:FILE.json) [--scenario FILE.json]\n                \
     [--strategy S] [--nodes N] [--device TECH] [--policy P] [--seed S]\n                \
     [--fleet FILE.json] [--route R] [--faults FILE.json]\n                \
     [--by job|tenant|device|cause|class|critical-path]\n                \
     [--format csv|json|markdown|chrome] [--out FILE]\n  \
     hpcqc-sim devices (--fleet FILE.json | --scenario FILE.json)\n  \
     hpcqc-sim faults (--plan FILE.json | --scenario FILE.json)\n  \
     hpcqc-sim sweep --grid FILE.json [--threads N] [--format csv|json|markdown]\n              \
     [--summary] [--timing] [--attribution] [--faults FILE.json] [--out FILE]\n  \
     hpcqc-sim advise --quantum-secs X --classical-secs Y --queue-wait-secs Z\n               \
     [--tenants N]\n\n\
     strategies: co-schedule | workflow | vqpu:N | malleable:N | adaptive[:N]\n\
     devices:    superconducting | trapped-ion | neutral-atom | photonic | spin-qubit\n\
     policies:   fcfs | easy | conservative | priority-backfill[:age=H] |\n            \
     quantum-aware[:boost=P]\n\
     routes:     pin-first | least-loaded | tech-affinity";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Every strategy form the CLI accepts, as shown in errors.
const STRATEGY_FORMS: &str = "co-schedule | workflow | vqpu:N | malleable:N | adaptive[:N]";
/// Bare strategy names, for "did you mean" hints against the typed word.
const STRATEGY_NAMES: [&str; 6] = [
    "co-schedule",
    "coschedule",
    "workflow",
    "vqpu",
    "malleable",
    "adaptive",
];

/// Parses a strategy argument; errors enumerate every valid form and hint
/// at the closest name (the `repro` arg-error convention).
fn parse_strategy(s: &str) -> Result<Strategy, String> {
    let bad = |input: &str| {
        let name = input.split(':').next().unwrap_or(input);
        let hint = match hpcqc::cli::did_you_mean(name, STRATEGY_NAMES) {
            Some(known) => format!(" — did you mean `{known}`?"),
            None => String::new(),
        };
        Err(format!(
            "unknown strategy `{input}`{hint} (valid: {STRATEGY_FORMS})"
        ))
    };
    match s {
        "co-schedule" | "coschedule" => Ok(Strategy::CoSchedule),
        "workflow" => Ok(Strategy::Workflow),
        "adaptive" => Ok(Strategy::Adaptive { vqpus: 4 }),
        other => {
            if let Some(n) = other.strip_prefix("vqpu:") {
                match n.parse() {
                    Ok(vqpus) => Ok(Strategy::Vqpu { vqpus }),
                    Err(_) => bad(other),
                }
            } else if let Some(n) = other.strip_prefix("malleable:") {
                match n.parse() {
                    Ok(min_nodes) => Ok(Strategy::Malleable { min_nodes }),
                    Err(_) => bad(other),
                }
            } else if let Some(n) = other.strip_prefix("adaptive:") {
                match n.parse() {
                    Ok(vqpus) => Ok(Strategy::Adaptive { vqpus }),
                    Err(_) => bad(other),
                }
            } else {
                bad(other)
            }
        }
    }
}

/// Every device technology the CLI accepts, as shown in errors.
const DEVICE_FORMS: &str = "superconducting | trapped-ion | neutral-atom | photonic | spin-qubit";
/// Device technology names, for "did you mean" hints.
const DEVICE_NAMES: [&str; 5] = [
    "superconducting",
    "trapped-ion",
    "neutral-atom",
    "photonic",
    "spin-qubit",
];

/// Parses a device technology; errors enumerate every valid form and hint
/// at the closest name (the `repro` arg-error convention).
fn parse_device(s: &str) -> Result<Technology, String> {
    match s {
        "superconducting" => Ok(Technology::Superconducting),
        "trapped-ion" => Ok(Technology::TrappedIon),
        "neutral-atom" => Ok(Technology::NeutralAtom),
        "photonic" => Ok(Technology::Photonic),
        "spin-qubit" => Ok(Technology::SpinQubit),
        other => {
            let hint = match hpcqc::cli::did_you_mean(other, DEVICE_NAMES) {
                Some(known) => format!(" — did you mean `{known}`?"),
                None => String::new(),
            };
            Err(format!(
                "unknown device `{other}`{hint} (valid: {DEVICE_FORMS})"
            ))
        }
    }
}

/// Parses a route policy; errors enumerate every valid form and hint at
/// the closest name (the `repro` arg-error convention).
fn parse_route(s: &str) -> Result<RouteSpec, String> {
    s.parse().map_err(|_| {
        let hint = match hpcqc::cli::did_you_mean(s, ALL_ROUTES.map(|r| r.name())) {
            Some(known) => format!(" — did you mean `{known}`?"),
            None => String::new(),
        };
        format!("unknown route `{s}`{hint} (valid: {ROUTE_FORMS})")
    })
}

/// Loads and validates a [`FleetSpec`] JSON file. Route typos inside the
/// file get the same "did you mean" treatment as `--route`.
fn load_fleet(path: &str) -> Result<FleetSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let fleet: FleetSpec = serde_json::from_str(&text).map_err(|e| {
        let message = e.to_string();
        // The serde error for a bad route already enumerates the valid
        // forms; recover the typo'd name and add the closest candidate.
        let hint = message
            .split_once("unknown route `")
            .and_then(|(_, rest)| rest.split('`').next())
            .and_then(|name| hpcqc::cli::did_you_mean(name, ALL_ROUTES.map(|r| r.name())))
            .map(|known| format!(" — did you mean `{known}`?"))
            .unwrap_or_default();
        format!("cannot parse fleet {path}: {message}{hint}")
    })?;
    fleet
        .validate()
        .map_err(|e| format!("invalid fleet {path}: {e}"))?;
    Ok(fleet)
}

/// Loads and validates a [`FaultPlan`] JSON file. serde_json's parse
/// errors already carry `line N column M`, which is the detail a user
/// fixing a hand-written plan needs most.
fn load_faults(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let plan: FaultPlan = serde_json::from_str(&text).map_err(|e| {
        format!(
            "cannot parse fault plan {path}: {}",
            with_line_info(&e.to_string(), &text)
        )
    })?;
    plan.validate()
        .map_err(|e| format!("invalid fault plan {path}: {e}"))?;
    Ok(plan)
}

/// The JSON parser reports byte offsets; translate a trailing
/// `at byte N` into the line/column a user can actually jump to.
fn with_line_info(msg: &str, text: &str) -> String {
    let Some((_, offset)) = msg.rsplit_once(" at byte ") else {
        return msg.to_string();
    };
    let Ok(pos) = offset.trim().parse::<usize>() else {
        return msg.to_string();
    };
    let pos = pos.min(text.len());
    let line = 1 + text[..pos].matches('\n').count();
    let column = 1 + pos - text[..pos].rfind('\n').map_or(0, |n| n + 1);
    format!("{msg} (line {line} column {column})")
}

/// Bare policy names, for "did you mean" hints against the typed word.
const POLICY_NAMES: [&str; 7] = [
    "fcfs",
    "easy",
    "easy-backfill",
    "conservative",
    "conservative-backfill",
    "priority-backfill",
    "quantum-aware",
];

/// Parses a policy argument; errors enumerate every valid form and hint
/// at the closest name (the `repro` arg-error convention).
fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    s.parse().map_err(|e: hpcqc::sched::ParsePolicyError| {
        let hint = match hpcqc::cli::did_you_mean(&e.name, POLICY_NAMES) {
            Some(known) => format!(" — did you mean `{known}`?"),
            None => String::new(),
        };
        format!(
            "unknown policy `{input}`{hint} (valid: {forms})",
            input = e.input,
            forms = hpcqc::sched::POLICY_FORMS
        )
    })
}

fn generate(args: &[String]) -> ExitCode {
    let mut count = 100usize;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut hybrid_share = 0.3f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--count" => {
                count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().cloned(),
            "--hybrid-share" => {
                hybrid_share = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let hybrid_share = hybrid_share.clamp(0.01, 0.99);
    let workload = Workload::builder()
        .class(
            JobClass::new("mpi", Pattern::classical(2_400.0))
                .weight(1.0 - hybrid_share)
                .nodes_between(2, 16),
        )
        .class(
            JobClass::new("vqe", Pattern::vqe(8, 120.0, Kernel::sampling(1_000)))
                .weight(hybrid_share)
                .nodes_between(1, 8)
                .quantum_estimate_secs(20.0),
        )
        .arrival(ArrivalProcess::poisson_per_hour(20.0))
        .count(count)
        .generate(seed);
    let text = hpcqc::workload::to_hqwf(&workload);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {count} jobs ({} hybrid) to {path}",
                workload.hybrid_count()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn load_trace(path: &str) -> Result<Workload, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".hqwf") {
        hpcqc::workload::from_hqwf(&text).map_err(|e| e.to_string())
    } else {
        hpcqc::workload::from_json(&text).map_err(|e| e.to_string())
    }
}

fn load_generator_spec(path: &str) -> Result<GeneratorSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec: GeneratorSpec =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    spec.validate()
        .map_err(|e| format!("invalid generator spec {path}: {e}"))?;
    Ok(spec)
}

/// `hpcqc-sim gen`: synthesize a facility-scale trace from a declarative
/// [`GeneratorSpec`]. HQWF output is written streaming — one line per
/// generated job — so month-long, million-job traces never materialize.
fn gen(args: &[String]) -> ExitCode {
    let mut spec_path: Option<String> = None;
    let mut seed = 42u64;
    let mut jobs: Option<u64> = None;
    let mut format = String::from("hqwf");
    let mut out: Option<String> = None;
    let mut demand = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => spec_path = it.next().cloned(),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--format" => format = it.next().cloned().unwrap_or_else(|| usage()),
            "--out" => out = it.next().cloned(),
            "--demand" => demand = true,
            other => {
                let known = [
                    "--spec", "--seed", "--jobs", "--format", "--out", "--demand",
                ];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    if !matches!(format.as_str(), "hqwf" | "json") {
        eprintln!("unknown --format `{format}` (hqwf | json)");
        return ExitCode::from(2);
    }
    let Some(spec_path) = spec_path else { usage() };
    let mut spec = match load_generator_spec(&spec_path) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(count) = jobs {
        spec.horizon = Horizon::Jobs { count };
    }
    if demand {
        println!(
            "spec `{}`: ~{:.1} jobs/hour (≈{:.0}/day) — {:.1} campaigns/h × mean campaign size {:.2}",
            spec.name,
            spec.expected_jobs_per_hour(),
            spec.expected_jobs_per_hour() * 24.0,
            spec.arrival.base_per_hour,
            spec.tenants.mean_campaign_size(),
        );
        return ExitCode::SUCCESS;
    }

    let stream = spec.stream(seed);
    let (count, hybrid) = if format == "json" {
        // JSON is a single document: materialize (use hqwf for huge traces).
        let workload = Workload::from_jobs(stream.collect());
        let text = hpcqc::workload::to_json(&workload).expect("workload serializes");
        let counts = (workload.len() as u64, workload.hybrid_count() as u64);
        if let Err(e) = write_output(out.as_deref(), |w| w.write_all(text.as_bytes())) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        counts
    } else {
        let mut count = 0u64;
        let mut hybrid = 0u64;
        let result = write_output(out.as_deref(), |w| {
            w.write_all(hpcqc::workload::HQWF_HEADER.as_bytes())?;
            for job in stream {
                count += 1;
                hybrid += u64::from(job.is_hybrid());
                writeln!(w, "{}", hpcqc::workload::to_hqwf_line(&job))?;
            }
            Ok(())
        });
        if let Err(e) = result {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        (count, hybrid)
    };
    eprintln!(
        "generated {count} jobs ({hybrid} hybrid) from `{}` at seed {seed}{}",
        spec.name,
        out.as_deref()
            .map(|p| format!(" into {p}"))
            .unwrap_or_default()
    );
    ExitCode::SUCCESS
}

/// Writes through a buffered sink to `path` (or stdout when `None`).
fn write_output(
    path: Option<&str>,
    body: impl FnOnce(&mut dyn Write) -> std::io::Result<()>,
) -> Result<(), String> {
    let fail = |e: std::io::Error| match path {
        Some(p) => format!("cannot write {p}: {e}"),
        None => format!("cannot write stdout: {e}"),
    };
    match path {
        Some(p) => {
            let file = std::fs::File::create(p).map_err(fail)?;
            let mut writer = std::io::BufWriter::new(file);
            body(&mut writer).map_err(fail)?;
            writer.flush().map_err(fail)
        }
        None => {
            let stdout = std::io::stdout();
            let mut writer = std::io::BufWriter::new(stdout.lock());
            body(&mut writer).map_err(fail)?;
            writer.flush().map_err(fail)
        }
    }
}

fn summarize(strategy: Strategy, outcome: &Outcome, table: &mut Table) {
    table.row(vec![
        strategy.to_string(),
        fmt_secs(outcome.makespan.as_secs_f64()),
        fmt_secs(outcome.stats.mean_wait_secs()),
        format!("{:.1}", outcome.stats.mean_bounded_slowdown()),
        fmt_pct(outcome.mean_device_utilization()),
        format!("{:.1}", outcome.stats.total_node_hours_wasted()),
        format!("{}", outcome.stats.failed_count()),
    ]);
}

/// What `run` simulates: a materialized workload file, or a generator
/// spec streamed through the simulator in constant memory.
enum RunInput {
    Workload(Workload),
    Gen(GeneratorSpec),
}

/// Runs one scenario with the observability instruments attached
/// ([`TraceObserver`], [`MetricsObserver`], [`SchedProfiler`]) and writes
/// the requested artifacts. Simulation results are byte-identical to the
/// uninstrumented path — the instruments only watch the event stream.
fn run_instrumented(
    sc: &Scenario,
    input: &RunInput,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
    metrics_interval: SimDuration,
    profile: bool,
    attribution_out: Option<&str>,
) -> Result<Outcome, String> {
    let mut tracer = trace_out.map(|_| TraceObserver::for_scenario(sc));
    let mut metrics = metrics_out.map(|_| MetricsObserver::for_scenario(sc, metrics_interval));
    let mut attribution = attribution_out.map(|_| AttributionObserver::new());
    let mut profiler = SchedProfiler::new();
    let outcome = {
        let mut extras: Vec<&mut dyn SimObserver> = Vec::new();
        if let Some(t) = tracer.as_mut() {
            extras.push(t);
        }
        if let Some(m) = metrics.as_mut() {
            extras.push(m);
        }
        if let Some(a) = attribution.as_mut() {
            extras.push(a);
        }
        let driver = driver_for(&sc.strategy);
        match input {
            RunInput::Workload(workload) => {
                let mut src = SliceSource::from(workload);
                FacilitySim::run_streamed_probed(sc, &mut src, driver, &mut extras, &mut profiler)
            }
            RunInput::Gen(spec) => {
                let mut src = spec.stream(sc.seed);
                FacilitySim::run_streamed_probed(sc, &mut src, driver, &mut extras, &mut profiler)
            }
        }
        .map_err(|e| format!("simulation failed under {}: {e}", sc.strategy))?
    };
    if let (Some(path), Some(tracer)) = (trace_out, tracer) {
        let trace = tracer.into_trace();
        let events = trace.len();
        write_output(Some(path), |w| {
            w.write_all(trace.to_json_string().as_bytes())
        })?;
        eprintln!("wrote trace ({events} events) to {path}");
    }
    if let (Some(path), Some(metrics)) = (metrics_out, metrics) {
        let registry = metrics.into_registry(outcome.makespan);
        let rendered = if path.ends_with(".json") {
            registry
                .to_json_string()
                .map_err(|e| format!("cannot serialize metrics: {e}"))?
        } else {
            registry.to_csv()
        };
        let rows = registry.len();
        write_output(Some(path), |w| w.write_all(rendered.as_bytes()))?;
        eprintln!("wrote metrics ({rows} samples) to {path}");
    }
    if let (Some(path), Some(attribution)) = (attribution_out, attribution) {
        let table = attribution.by_cause();
        let rendered = render_table(&table, format_for_path(path))?;
        let jobs = attribution.len();
        write_output(Some(path), |w| w.write_all(rendered.as_bytes()))?;
        eprintln!(
            "wrote wait attribution ({jobs} jobs, {} of wait) to {path}",
            fmt_secs(attribution.total_wait().as_secs_f64())
        );
    }
    if profile {
        eprintln!("{}", profiler.summary());
    }
    Ok(outcome)
}

/// Table output format, selected from a file extension (`.json`,
/// `.md`/`.markdown`, anything else CSV).
fn format_for_path(path: &str) -> &'static str {
    if path.ends_with(".json") {
        "json"
    } else if path.ends_with(".md") || path.ends_with(".markdown") {
        "markdown"
    } else {
        "csv"
    }
}

/// Renders a [`Table`] as CSV, pretty JSON, or markdown.
fn render_table(table: &Table, format: &str) -> Result<String, String> {
    Ok(match format {
        "json" => serde_json::to_string_pretty(table)
            .map_err(|e| format!("cannot serialize table: {e}"))?,
        "markdown" | "md" => table.to_markdown(),
        _ => table.to_csv(),
    })
}

fn run(args: &[String]) -> ExitCode {
    let mut workload: Option<String> = None;
    let mut source: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut strategy: Option<Strategy> = None;
    let mut nodes: Option<u32> = None;
    let mut device: Option<Technology> = None;
    let mut policy: Option<PolicySpec> = None;
    let mut fleet_path: Option<String> = None;
    let mut route: Option<RouteSpec> = None;
    let mut faults_path: Option<String> = None;
    let mut age_weight: Option<f64> = None;
    let mut size_weight: Option<f64> = None;
    let mut fairshare_weight: Option<f64> = None;
    let mut half_life: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut compare = false;
    let mut gantt = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_interval = 60.0f64;
    let mut profile = false;
    let mut attribution_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => workload = it.next().cloned(),
            "--trace" => trace_out = it.next().cloned(),
            "--metrics" => metrics_out = it.next().cloned(),
            "--attribution" => attribution_out = it.next().cloned(),
            "--metrics-interval" => {
                let value = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v > 0.0);
                match value {
                    Some(v) => metrics_interval = v,
                    None => {
                        eprintln!("--metrics-interval needs a positive number of seconds");
                        return ExitCode::from(2);
                    }
                }
            }
            "--profile" => profile = true,
            "--source" => source = it.next().cloned(),
            "--scenario" => scenario_path = it.next().cloned(),
            "--strategy" => match it.next().map(|s| parse_strategy(s)) {
                Some(Ok(s)) => strategy = Some(s),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => {
                    eprintln!("--nodes needs a positive node count");
                    return ExitCode::from(2);
                }
            },
            "--device" => match it.next().map(|s| parse_device(s)) {
                Some(Ok(d)) => device = Some(d),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--fleet" => fleet_path = it.next().cloned(),
            "--faults" => faults_path = it.next().cloned(),
            "--route" => match it.next().map(|s| parse_route(s)) {
                Some(Ok(r)) => route = Some(r),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--policy" => match it.next().map(|s| parse_policy(s)) {
                Some(Ok(p)) => policy = Some(p),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--age-weight" | "--size-weight" | "--fairshare-weight" | "--fairshare-half-life" => {
                let value = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite());
                let Some(v) = value else {
                    eprintln!("{arg} needs a finite number");
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--fairshare-half-life" => {
                        if v <= 0.0 {
                            eprintln!("--fairshare-half-life needs a positive number of seconds");
                            return ExitCode::from(2);
                        }
                        half_life = Some(v);
                    }
                    "--age-weight" => age_weight = Some(v),
                    "--size-weight" => size_weight = Some(v),
                    _ => fairshare_weight = Some(v),
                }
            }
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed needs a numeric seed");
                    return ExitCode::from(2);
                }
            },
            "--compare" => compare = true,
            "--gantt" => gantt = true,
            other => {
                let known = [
                    "--workload",
                    "--source",
                    "--scenario",
                    "--strategy",
                    "--nodes",
                    "--device",
                    "--policy",
                    "--fleet",
                    "--route",
                    "--faults",
                    "--seed",
                    "--age-weight",
                    "--size-weight",
                    "--fairshare-weight",
                    "--fairshare-half-life",
                    "--compare",
                    "--gantt",
                    "--trace",
                    "--metrics",
                    "--metrics-interval",
                    "--profile",
                    "--attribution",
                ];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    // `--trace` used to name the *input* workload; it is now the
    // trace-event output. Catch the old spelling with a pointed hint.
    if workload.is_none() && trace_out.as_deref().is_some_and(|p| p.ends_with(".hqwf")) {
        eprintln!(
            "--trace now names the Chrome trace-event *output*; \
             use --workload for the input workload file"
        );
        return ExitCode::from(2);
    }
    if compare
        && (trace_out.is_some() || metrics_out.is_some() || profile || attribution_out.is_some())
    {
        eprintln!(
            "--trace/--metrics/--profile/--attribution instrument a single run; drop --compare"
        );
        return ExitCode::from(2);
    }
    let input = match (workload, source) {
        (Some(path), None) => match load_trace(&path) {
            Ok(w) => RunInput::Workload(w),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(source)) => {
            let Some(path) = source.strip_prefix("gen:") else {
                eprintln!("--source takes `gen:<spec.json>` (got `{source}`)");
                return ExitCode::from(2);
            };
            match load_generator_spec(path) {
                Ok(spec) => RunInput::Gen(spec),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (Some(_), Some(_)) => {
            eprintln!("--workload and --source are mutually exclusive");
            return ExitCode::from(2);
        }
        (None, None) => usage(),
    };

    let mut scenario = match scenario_path {
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Scenario>(&s).map_err(|e| e.to_string()))
        {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("cannot load scenario {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Scenario::default(),
    };
    if let Some(n) = nodes {
        scenario.classical_nodes = n;
    }
    if let Some(d) = device {
        scenario.devices = vec![d];
    }
    if let Some(path) = fleet_path {
        match load_fleet(&path) {
            Ok(fleet) => scenario.fleet = Some(fleet),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    match (route, &mut scenario.fleet) {
        (Some(r), Some(fleet)) => fleet.route = r,
        (Some(_), None) => {
            eprintln!("--route needs a fleet (--fleet FILE, or a scenario file carrying one)");
            return ExitCode::from(2);
        }
        (None, _) => {}
    }
    // A scenario file can carry a fleet serde cannot fully vet (duplicate
    // device names, empty device list); catch it before the simulator.
    if let Some(fleet) = &scenario.fleet {
        if let Err(e) = fleet.validate() {
            eprintln!("invalid scenario fleet: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = faults_path {
        match load_faults(&path) {
            Ok(plan) => scenario.faults = Some(plan),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    // A scenario file can carry a fault plan serde cannot vet (NaN rates,
    // mtbf without repair); catch it before the simulator panics.
    if let Some(plan) = &scenario.faults {
        if let Err(e) = plan.validate() {
            eprintln!("invalid scenario fault plan: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = policy {
        scenario.policy = p;
    }
    // Priority knobs layer field-by-field on top of whatever policy is in
    // force (from `--policy` or the scenario file), so `--size-weight 0.5`
    // overrides exactly that weight and nothing else.
    if let Some(v) = age_weight {
        scenario.policy.weights.age_per_hour = v;
    }
    if let Some(v) = size_weight {
        scenario.policy.weights.size_per_node = v;
    }
    if let Some(v) = fairshare_weight {
        scenario.policy.weights.fairshare_per_node_hour = v;
    }
    if let Some(h) = half_life {
        scenario.policy.fairshare_half_life_secs = h;
    }
    // A scenario file can carry policy knobs serde cannot reject (zero
    // half-life, NaN weights); catch them here instead of panicking deep
    // in the scheduler.
    if let Err(e) = scenario.policy.validate() {
        eprintln!("invalid scenario policy: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(s) = seed {
        scenario.seed = s;
    }
    if let Some(s) = strategy {
        scenario.strategy = s;
    }
    scenario.record_gantt = gantt;

    match &input {
        RunInput::Workload(workload) => eprintln!(
            "{} jobs ({} hybrid) on {} nodes + {:?}, policy {}",
            workload.len(),
            workload.hybrid_count(),
            scenario.classical_nodes,
            scenario.devices,
            scenario.policy
        ),
        RunInput::Gen(spec) => eprintln!(
            "streaming `{}` (~{:.0} jobs/h expected, seed {}) on {} nodes + {:?}, policy {}",
            spec.name,
            spec.expected_jobs_per_hour(),
            scenario.seed,
            scenario.classical_nodes,
            scenario.devices,
            scenario.policy
        ),
    }
    if let Some(fleet) = &scenario.fleet {
        eprintln!(
            "fleet `{}`: {} devices, route {}",
            fleet.name,
            fleet.devices.len(),
            fleet.route
        );
    }
    if let Some(plan) = &scenario.faults {
        eprintln!(
            "fault plan `{}`{}",
            plan.label(),
            if plan.is_inert() { " (inert)" } else { "" }
        );
    }

    let strategies = if compare {
        Strategy::representative_set()
    } else {
        vec![scenario.strategy]
    };
    let mut table = Table::new(vec![
        "strategy",
        "makespan",
        "mean wait",
        "slowdown",
        "QPU util",
        "node-h wasted",
        "failed",
    ]);
    let instrumented =
        trace_out.is_some() || metrics_out.is_some() || profile || attribution_out.is_some();
    for s in strategies {
        let mut sc = scenario.clone();
        sc.strategy = s;
        let result = if instrumented {
            run_instrumented(
                &sc,
                &input,
                trace_out.as_deref(),
                metrics_out.as_deref(),
                SimDuration::from_secs_f64(metrics_interval),
                profile,
                attribution_out.as_deref(),
            )
            .map_err(|e| {
                eprintln!("{e}");
                ExitCode::FAILURE
            })
        } else {
            match &input {
                RunInput::Workload(workload) => FacilitySim::run(&sc, workload),
                RunInput::Gen(spec) => {
                    // A fresh stream per strategy: every strategy replays the
                    // identical generated sequence (common random numbers).
                    let mut source = spec.stream(sc.seed);
                    FacilitySim::run_streamed(&sc, &mut source)
                }
            }
            .map_err(|e| {
                eprintln!("simulation failed under {s}: {e}");
                ExitCode::FAILURE
            })
        };
        match result {
            Ok(outcome) => {
                if let RunInput::Gen(_) = &input {
                    eprintln!(
                        "{s}: streamed {} jobs, peak in-flight {} ({} completed, {} failed)",
                        outcome.stats.len(),
                        outcome.peak_in_flight_jobs,
                        outcome.stats.completed_count(),
                        outcome.stats.failed_count(),
                    );
                }
                summarize(s, &outcome, &mut table);
                // With a fleet in force, break the per-device picture out:
                // routing decisions are invisible in the aggregate QPU
                // utilization column.
                if scenario.fleet.is_some() && !compare {
                    for d in &outcome.devices {
                        eprintln!(
                            "device {} [{}]: {} kernels, busy {}, util {}, recal {}",
                            d.name,
                            d.technology,
                            d.tasks,
                            fmt_secs(d.busy_seconds),
                            fmt_pct(d.utilization),
                            fmt_secs(d.recalibration_seconds),
                        );
                    }
                }
                if gantt && !compare {
                    if let Some(g) = &outcome.gantt {
                        eprintln!();
                        eprint!("{}", g.render_ascii(SimTime::ZERO, outcome.makespan, 100));
                    }
                }
            }
            Err(code) => return code,
        }
    }
    println!("{table}");
    ExitCode::SUCCESS
}

/// `hpcqc-sim explain`: run a scenario with the wait-attribution
/// observer attached and answer "who pays the queue wait" — a blame
/// table by cause, tenant, device, class, or job, or the per-job
/// critical path. `--format chrome` emits the causal chain as a
/// flow-arrowed Chrome trace instead (open it in Perfetto).
fn explain(args: &[String]) -> ExitCode {
    let mut workload: Option<String> = None;
    let mut source: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut strategy: Option<Strategy> = None;
    let mut nodes: Option<u32> = None;
    let mut device: Option<Technology> = None;
    let mut policy: Option<PolicySpec> = None;
    let mut fleet_path: Option<String> = None;
    let mut route: Option<RouteSpec> = None;
    let mut faults_path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut by = String::from("cause");
    let mut format: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => workload = it.next().cloned(),
            "--source" => source = it.next().cloned(),
            "--scenario" => scenario_path = it.next().cloned(),
            "--strategy" => match it.next().map(|s| parse_strategy(s)) {
                Some(Ok(s)) => strategy = Some(s),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => {
                    eprintln!("--nodes needs a positive node count");
                    return ExitCode::from(2);
                }
            },
            "--device" => match it.next().map(|s| parse_device(s)) {
                Some(Ok(d)) => device = Some(d),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--policy" => match it.next().map(|s| parse_policy(s)) {
                Some(Ok(p)) => policy = Some(p),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--fleet" => fleet_path = it.next().cloned(),
            "--faults" => faults_path = it.next().cloned(),
            "--route" => match it.next().map(|s| parse_route(s)) {
                Some(Ok(r)) => route = Some(r),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed needs a numeric seed");
                    return ExitCode::from(2);
                }
            },
            "--by" => by = it.next().cloned().unwrap_or_else(|| usage()),
            "--format" => format = it.next().cloned(),
            "--out" => out = it.next().cloned(),
            other => {
                let known = [
                    "--workload",
                    "--source",
                    "--scenario",
                    "--strategy",
                    "--nodes",
                    "--device",
                    "--policy",
                    "--fleet",
                    "--route",
                    "--faults",
                    "--seed",
                    "--by",
                    "--format",
                    "--out",
                ];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    const BY_VALUES: [&str; 6] = ["cause", "tenant", "device", "class", "job", "critical-path"];
    if !BY_VALUES.contains(&by.as_str()) {
        let hint = match hpcqc::cli::did_you_mean(&by, BY_VALUES) {
            Some(known) => format!(" — did you mean `{known}`?"),
            None => String::new(),
        };
        eprintln!(
            "unknown --by `{by}`{hint} (valid: {})",
            BY_VALUES.join(" | ")
        );
        return ExitCode::from(2);
    }
    // Format defaults to the output file's extension, or CSV on stdout.
    let format = format.unwrap_or_else(|| format_for_path(out.as_deref().unwrap_or("")).into());
    if !matches!(
        format.as_str(),
        "csv" | "json" | "markdown" | "md" | "chrome"
    ) {
        eprintln!("unknown --format `{format}` (csv | json | markdown | chrome)");
        return ExitCode::from(2);
    }

    let input = match (workload, source) {
        (Some(path), None) => match load_trace(&path) {
            Ok(w) => RunInput::Workload(w),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(source)) => {
            let Some(path) = source.strip_prefix("gen:") else {
                eprintln!("--source takes `gen:<spec.json>` (got `{source}`)");
                return ExitCode::from(2);
            };
            match load_generator_spec(path) {
                Ok(spec) => RunInput::Gen(spec),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (Some(_), Some(_)) => {
            eprintln!("--workload and --source are mutually exclusive");
            return ExitCode::from(2);
        }
        (None, None) => usage(),
    };

    let mut scenario = match scenario_path {
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Scenario>(&s).map_err(|e| e.to_string()))
        {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("cannot load scenario {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Scenario::default(),
    };
    if let Some(n) = nodes {
        scenario.classical_nodes = n;
    }
    if let Some(d) = device {
        scenario.devices = vec![d];
    }
    if let Some(path) = fleet_path {
        match load_fleet(&path) {
            Ok(fleet) => scenario.fleet = Some(fleet),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    match (route, &mut scenario.fleet) {
        (Some(r), Some(fleet)) => fleet.route = r,
        (Some(_), None) => {
            eprintln!("--route needs a fleet (--fleet FILE, or a scenario file carrying one)");
            return ExitCode::from(2);
        }
        (None, _) => {}
    }
    if let Some(fleet) = &scenario.fleet {
        if let Err(e) = fleet.validate() {
            eprintln!("invalid scenario fleet: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = faults_path {
        match load_faults(&path) {
            Ok(plan) => scenario.faults = Some(plan),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(plan) = &scenario.faults {
        if let Err(e) = plan.validate() {
            eprintln!("invalid scenario fault plan: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = policy {
        scenario.policy = p;
    }
    if let Err(e) = scenario.policy.validate() {
        eprintln!("invalid scenario policy: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(s) = seed {
        scenario.seed = s;
    }
    if let Some(s) = strategy {
        scenario.strategy = s;
    }

    let mut attribution = AttributionObserver::new();
    let result = match &input {
        RunInput::Workload(workload) => {
            FacilitySim::run_observed(&scenario, workload, &mut [&mut attribution])
        }
        RunInput::Gen(spec) => {
            let mut src = spec.stream(scenario.seed);
            FacilitySim::run_streamed_observed(&scenario, &mut src, &mut [&mut attribution])
        }
    };
    if let Err(e) = result {
        eprintln!("simulation failed under {}: {e}", scenario.strategy);
        return ExitCode::FAILURE;
    }

    eprintln!(
        "attributed {} of queue wait across {} jobs \
         (QPU-contention share {}, head-shadow share {}, fault-recovery share {})",
        fmt_secs(attribution.total_wait().as_secs_f64()),
        attribution.len(),
        fmt_pct(attribution.qpu_contention_frac()),
        fmt_pct(attribution.shadow_frac()),
        fmt_pct(attribution.fault_recovery_frac()),
    );
    let rendered = if format == "chrome" {
        attribution.to_chrome_trace().to_json_string()
    } else {
        let table = match by.as_str() {
            "tenant" => attribution.by_tenant(),
            "device" => attribution.by_device(),
            "class" => attribution.by_class(),
            "job" => attribution.by_job(),
            "critical-path" => attribution.critical_path(),
            _ => attribution.by_cause(),
        };
        match render_table(&table, &format) {
            Ok(rendered) => rendered,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(e) = write_output(out.as_deref(), |w| w.write_all(rendered.as_bytes())) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = out {
        eprintln!("wrote wait attribution (--by {by}) to {path}");
    }
    ExitCode::SUCCESS
}

/// `hpcqc-sim devices`: inspect a fleet (or a scenario's device set)
/// without running anything — one row per device, plus the route policy
/// in force.
fn devices(args: &[String]) -> ExitCode {
    let mut fleet_path: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fleet" => fleet_path = it.next().cloned(),
            "--scenario" => scenario_path = it.next().cloned(),
            other => {
                let known = ["--fleet", "--scenario"];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    let fleet = match (fleet_path, scenario_path) {
        (Some(path), None) => match load_fleet(&path) {
            Ok(fleet) => fleet,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        (None, Some(path)) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Scenario>(&s).map_err(|e| e.to_string()))
        {
            Ok(sc) => sc
                .fleet
                // A fleetless scenario still has devices: show them as the
                // one-device-per-technology fleet the simulator builds.
                .unwrap_or_else(|| FleetSpec::from_legacy(&sc.devices)),
            Err(e) => {
                eprintln!("cannot load scenario {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (Some(_), Some(_)) => {
            eprintln!("--fleet and --scenario are mutually exclusive");
            return ExitCode::from(2);
        }
        (None, None) => usage(),
    };
    if let Err(e) = fleet.validate() {
        eprintln!("invalid fleet `{}`: {e}", fleet.name);
        return ExitCode::FAILURE;
    }
    println!(
        "fleet `{}`: {} devices, route {}",
        fleet.name,
        fleet.devices.len(),
        fleet.route
    );
    let mut table = Table::new(vec![
        "device",
        "technology",
        "qubits",
        "shot cap",
        "calibration",
        "access",
        "status",
    ]);
    for d in &fleet.devices {
        table.row(vec![
            d.name.clone(),
            d.technology.to_string(),
            d.qubits
                .unwrap_or_else(|| d.technology.typical_qubits())
                .to_string(),
            d.shot_capacity
                .map_or_else(|| "unlimited".into(), |cap| cap.to_string()),
            d.calibration.map_or_else(
                || "scenario".into(),
                |on| if on { "on" } else { "off" }.into(),
            ),
            match &d.access {
                None => "scenario".to_string(),
                Some(AccessMode::Integrated { .. }) => "integrated".to_string(),
                Some(AccessMode::Cloud(_)) => "cloud".to_string(),
            },
            if d.down == Some(true) {
                "down"
            } else {
                "in service"
            }
            .to_string(),
        ]);
    }
    print!("{table}");
    ExitCode::SUCCESS
}

/// `hpcqc-sim faults`: inspect a dependability plan (or a scenario's
/// embedded one) without running anything — each fault process, its
/// parameters, and the recovery policy in force.
fn faults(args: &[String]) -> ExitCode {
    let mut plan_path: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--plan" => plan_path = it.next().cloned(),
            "--scenario" => scenario_path = it.next().cloned(),
            other => {
                let known = ["--plan", "--scenario"];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    let plan = match (plan_path, scenario_path) {
        (Some(path), None) => match load_faults(&path) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        (None, Some(path)) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Scenario>(&s).map_err(|e| e.to_string()))
        {
            Ok(sc) => match sc.faults {
                Some(plan) => plan,
                None => {
                    eprintln!("scenario {path} carries no fault plan");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot load scenario {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (Some(_), Some(_)) => {
            eprintln!("--plan and --scenario are mutually exclusive");
            return ExitCode::from(2);
        }
        (None, None) => usage(),
    };
    if let Err(e) = plan.validate() {
        eprintln!("invalid fault plan `{}`: {e}", plan.label());
        return ExitCode::FAILURE;
    }
    println!(
        "fault plan `{}`: {}",
        plan.label(),
        if plan.is_inert() {
            "inert (fault-free baseline)"
        } else {
            "active"
        }
    );
    let mut table = Table::new(vec!["process", "parameter", "value"]);
    match &plan.node {
        Some(node) => {
            table.row(vec!["node".into(), "mtbf".into(), node.mtbf.to_string()]);
            table.row(vec![
                "node".into(),
                "repair".into(),
                node.repair.to_string(),
            ]);
            table.row(vec![
                "node".into(),
                "requeue budget".into(),
                node.requeue_budget().to_string(),
            ]);
        }
        None => {
            table.row(vec![
                "node".into(),
                "process".into(),
                "none (legacy scenario model, if any)".into(),
            ]);
        }
    }
    match &plan.device {
        Some(device) => {
            match device.outage_process() {
                Some((mtbf, repair)) => {
                    table.row(vec![
                        "device".into(),
                        "outage mtbf".into(),
                        mtbf.to_string(),
                    ]);
                    table.row(vec![
                        "device".into(),
                        "outage repair".into(),
                        repair.to_string(),
                    ]);
                }
                None => {
                    table.row(vec!["device".into(), "outages".into(), "none".into()]);
                }
            }
            match &device.drift {
                Some(drift) => {
                    table.row(vec![
                        "drift".into(),
                        "per shot / threshold".into(),
                        format!("{} / {}", drift.per_shot, drift.threshold),
                    ]);
                    table.row(vec![
                        "drift".into(),
                        "shots to recalibration".into(),
                        format!("{:.0}", drift.shots_to_threshold()),
                    ]);
                    table.row(vec![
                        "drift".into(),
                        "recalibration".into(),
                        drift.recalibration_dist().to_string(),
                    ]);
                }
                None => {
                    table.row(vec!["drift".into(), "process".into(), "none".into()]);
                }
            }
            table.row(vec![
                "device".into(),
                "kernel error rate".into(),
                format!("{}", device.error_rate()),
            ]);
        }
        None => {
            table.row(vec!["device".into(), "process".into(), "none".into()]);
        }
    }
    let recovery = plan.recovery_or_default();
    table.row(vec![
        "recovery".into(),
        "kernel retries".into(),
        format!(
            "{} (backoff base {}s, doubling)",
            recovery.kernel_retry_cap(),
            recovery.backoff_base_secs()
        ),
    ]);
    table.row(vec![
        "recovery".into(),
        "failover".into(),
        if recovery.failover_enabled() {
            "on (re-route via fleet)"
        } else {
            "off"
        }
        .into(),
    ]);
    table.row(vec![
        "recovery".into(),
        "requeue budget".into(),
        recovery.requeue_budget().to_string(),
    ]);
    match recovery.checkpoint_spec() {
        Some(cp) => {
            table.row(vec![
                "recovery".into(),
                "checkpoint".into(),
                format!(
                    "every {} (+{} cost)",
                    fmt_secs(cp.interval_secs),
                    fmt_secs(cp.cost_secs)
                ),
            ]);
        }
        None => {
            table.row(vec!["recovery".into(), "checkpoint".into(), "off".into()]);
        }
    }
    print!("{table}");
    ExitCode::SUCCESS
}

/// Runs a declarative parameter grid on the sweep engine and emits the
/// per-cell rows (or the replica-aggregated summary) as CSV, JSON, or
/// markdown.
fn sweep(args: &[String]) -> ExitCode {
    let mut grid_path: Option<String> = None;
    let mut threads = 0usize; // 0 = available parallelism
    let mut format = String::from("csv");
    let mut summary = false;
    let mut timing = false;
    let mut attribution = false;
    let mut faults_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => grid_path = it.next().cloned(),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--format" => format = it.next().cloned().unwrap_or_else(|| usage()),
            "--summary" => summary = true,
            "--timing" => timing = true,
            "--attribution" => attribution = true,
            "--faults" => faults_path = it.next().cloned(),
            "--out" => out = it.next().cloned(),
            other => {
                let known = [
                    "--grid",
                    "--threads",
                    "--format",
                    "--summary",
                    "--timing",
                    "--attribution",
                    "--faults",
                    "--out",
                ];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    if !matches!(format.as_str(), "csv" | "json" | "markdown" | "md") {
        eprintln!("unknown --format `{format}` (csv | json | markdown)");
        return ExitCode::from(2);
    }
    let Some(grid_path) = grid_path else { usage() };
    let mut grid = match std::fs::read_to_string(&grid_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<Grid>(&s).map_err(|e| e.to_string()))
    {
        Ok(grid) => grid,
        Err(e) => {
            eprintln!("cannot load grid {grid_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `--faults` pairs the loaded plan with the inert baseline as a
    // two-cell axis, so every combination gets a with/without comparison.
    // A grid that already declares its own axis wins — mixing the two
    // would silently reshuffle the grid's cell indices.
    if let Some(path) = faults_path {
        if grid.faults.is_some() {
            eprintln!("grid {grid_path} already has a `faults` axis; drop --faults");
            return ExitCode::from(2);
        }
        match load_faults(&path) {
            Ok(plan) => grid.faults = Some(vec![FaultPlan::none(), plan]),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = grid.validate() {
        eprintln!("invalid grid {grid_path}: {e}");
        return ExitCode::FAILURE;
    }

    let executor = Executor::new(threads);
    eprintln!(
        "sweep: {} cells ({} replicas) on {} threads",
        grid.len(),
        grid.replicas,
        executor.threads()
    );
    // Live progress on stderr: a line per ~10% of cells (always the last).
    let stride = (grid.len() / 10).max(1);
    let progress = |done: usize, total: usize| {
        if done % stride == 0 || done == total {
            eprintln!("sweep: {done}/{total} cells done");
        }
    };
    let result = match if attribution {
        executor.run_sim_attributed_with(&grid, progress)
    } else {
        executor.run_sim_with(&grid, progress)
    } {
        Ok(result) => result,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "sweep: {:.1} cpu-seconds of simulation{}",
        result.total_wall_secs(),
        result
            .peak_rss_kb()
            .map(|kb| format!(", peak RSS {:.1} MB", kb as f64 / 1024.0))
            .unwrap_or_default(),
    );
    if timing {
        eprintln!();
        eprint!("{}", result.timing_table().to_markdown());
    }
    let (rendered, contents) = if summary {
        let table = result.summary();
        let rendered = match format.as_str() {
            "csv" => table.to_csv(),
            "json" => serde_json::to_string_pretty(&table).expect("table serializes"),
            _ => table.to_markdown(),
        };
        let contents = format!("{} summary rows ({} cells)", table.len(), result.len());
        (rendered, contents)
    } else {
        let rendered = match format.as_str() {
            "csv" => result.to_csv(),
            "json" => result.to_json(),
            _ => result.to_markdown(),
        };
        (rendered, format!("{} cells", result.len()))
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {contents} to {path}");
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

/// Prints the §4 advisor's recommendation for a workload profile: which
/// integration strategy fits, and why (the paper's rationale verbatim).
fn advise(args: &[String]) -> ExitCode {
    let mut quantum_secs: Option<f64> = None;
    let mut classical_secs: Option<f64> = None;
    let mut queue_wait_secs: Option<f64> = None;
    let mut tenants = 4u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quantum-secs" | "--classical-secs" | "--queue-wait-secs" => {
                let value = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0);
                let Some(v) = value else {
                    eprintln!("{arg} needs a non-negative number of seconds");
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--quantum-secs" => quantum_secs = Some(v),
                    "--classical-secs" => classical_secs = Some(v),
                    _ => queue_wait_secs = Some(v),
                }
            }
            "--tenants" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => tenants = n,
                None => {
                    eprintln!("--tenants needs a job count");
                    return ExitCode::from(2);
                }
            },
            other => {
                let known = [
                    "--quantum-secs",
                    "--classical-secs",
                    "--queue-wait-secs",
                    "--tenants",
                ];
                match hpcqc::cli::did_you_mean(other, known) {
                    Some(hint) => eprintln!("unknown argument `{other}` — did you mean `{hint}`?"),
                    None => eprintln!("unknown argument `{other}`"),
                }
                return ExitCode::from(2);
            }
        }
    }
    let (Some(quantum), Some(classical), Some(wait)) =
        (quantum_secs, classical_secs, queue_wait_secs)
    else {
        eprintln!(
            "advise needs --quantum-secs, --classical-secs and --queue-wait-secs\n\
             (typical durations of one quantum phase, one classical phase, and\n\
             one batch-queue pass at your facility)"
        );
        return ExitCode::from(2);
    };
    let mut profile = WorkloadProfile::new(quantum, classical, wait);
    profile.concurrent_hybrid_jobs = tenants;
    let recommendation = recommend(&profile);
    println!("recommended strategy: {}", recommendation.strategy);
    println!("rationale (paper §4): {}", recommendation.rationale);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("devices") => devices(&args[1..]),
        Some("faults") => faults(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("advise") => advise(&args[1..]),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
