//! `hpcqc-sim` — run hybrid HPC-QC scheduling scenarios from the command
//! line.
//!
//! ```text
//! # Generate a synthetic workload trace
//! hpcqc-sim generate --count 200 --seed 7 --out campaign.hqwf
//!
//! # Simulate it under one strategy
//! hpcqc-sim run --trace campaign.hqwf --strategy vqpu:4 --nodes 64 \
//!               --device superconducting --policy easy
//!
//! # Compare all four strategies on the same trace
//! hpcqc-sim run --trace campaign.hqwf --compare --device neutral-atom
//!
//! # Archive / inspect a scenario as JSON
//! hpcqc-sim run --trace campaign.hqwf --scenario scenario.json
//!
//! # Run a declarative parameter sweep across all cores
//! hpcqc-sim sweep --grid examples/grids/crossover.json --threads 8 --format csv
//! ```
//!
//! Traces are read as HQWF (`.hqwf`, see `hpcqc_workload::trace`) or JSON
//! (anything else). `--scenario` loads a full [`Scenario`] as JSON;
//! individual flags override its fields.

use hpcqc::prelude::*;
use std::process::ExitCode;

const USAGE: &str =
    "usage:\n  hpcqc-sim generate --count N [--seed S] [--out FILE] [--hybrid-share F]\n  \
     hpcqc-sim run --trace FILE [--scenario FILE.json] [--strategy S] [--nodes N]\n            \
     [--device TECH] [--policy P] [--seed S] [--compare] [--gantt]\n  \
     hpcqc-sim sweep --grid FILE.json [--threads N] [--format csv|json|markdown]\n              \
     [--summary] [--out FILE]\n\n\
     strategies: co-schedule | workflow | vqpu:N | malleable:N\n\
     devices:    superconducting | trapped-ion | neutral-atom | photonic | spin-qubit\n\
     policies:   fcfs | easy | conservative";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_strategy(s: &str) -> Strategy {
    match s {
        "co-schedule" | "coschedule" => Strategy::CoSchedule,
        "workflow" => Strategy::Workflow,
        other => {
            if let Some(n) = other.strip_prefix("vqpu:") {
                Strategy::Vqpu {
                    vqpus: n.parse().unwrap_or_else(|_| usage()),
                }
            } else if let Some(n) = other.strip_prefix("malleable:") {
                Strategy::Malleable {
                    min_nodes: n.parse().unwrap_or_else(|_| usage()),
                }
            } else {
                usage()
            }
        }
    }
}

fn parse_device(s: &str) -> Technology {
    match s {
        "superconducting" => Technology::Superconducting,
        "trapped-ion" => Technology::TrappedIon,
        "neutral-atom" => Technology::NeutralAtom,
        "photonic" => Technology::Photonic,
        "spin-qubit" => Technology::SpinQubit,
        _ => usage(),
    }
}

fn parse_policy(s: &str) -> Policy {
    match s {
        "fcfs" => Policy::Fcfs,
        "easy" => Policy::EasyBackfill,
        "conservative" => Policy::ConservativeBackfill,
        _ => usage(),
    }
}

fn generate(args: &[String]) -> ExitCode {
    let mut count = 100usize;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut hybrid_share = 0.3f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--count" => {
                count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().cloned(),
            "--hybrid-share" => {
                hybrid_share = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let hybrid_share = hybrid_share.clamp(0.01, 0.99);
    let workload = Workload::builder()
        .class(
            JobClass::new("mpi", Pattern::classical(2_400.0))
                .weight(1.0 - hybrid_share)
                .nodes_between(2, 16),
        )
        .class(
            JobClass::new("vqe", Pattern::vqe(8, 120.0, Kernel::sampling(1_000)))
                .weight(hybrid_share)
                .nodes_between(1, 8)
                .quantum_estimate_secs(20.0),
        )
        .arrival(ArrivalProcess::poisson_per_hour(20.0))
        .count(count)
        .generate(seed);
    let text = hpcqc::workload::to_hqwf(&workload);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {count} jobs ({} hybrid) to {path}",
                workload.hybrid_count()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn load_trace(path: &str) -> Result<Workload, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".hqwf") {
        hpcqc::workload::from_hqwf(&text).map_err(|e| e.to_string())
    } else {
        hpcqc::workload::from_json(&text).map_err(|e| e.to_string())
    }
}

fn summarize(strategy: Strategy, outcome: &Outcome, table: &mut Table) {
    table.row(vec![
        strategy.to_string(),
        fmt_secs(outcome.makespan.as_secs_f64()),
        fmt_secs(outcome.stats.mean_wait_secs()),
        format!("{:.1}", outcome.stats.mean_bounded_slowdown()),
        fmt_pct(outcome.mean_device_utilization()),
        format!("{:.1}", outcome.stats.total_node_hours_wasted()),
        format!("{}", outcome.stats.failed_count()),
    ]);
}

fn run(args: &[String]) -> ExitCode {
    let mut trace: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut strategy: Option<Strategy> = None;
    let mut nodes: Option<u32> = None;
    let mut device: Option<Technology> = None;
    let mut policy: Option<Policy> = None;
    let mut seed: Option<u64> = None;
    let mut compare = false;
    let mut gantt = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => trace = it.next().cloned(),
            "--scenario" => scenario_path = it.next().cloned(),
            "--strategy" => strategy = it.next().map(|s| parse_strategy(s)),
            "--nodes" => nodes = it.next().and_then(|v| v.parse().ok()),
            "--device" => device = it.next().map(|s| parse_device(s)),
            "--policy" => policy = it.next().map(|s| parse_policy(s)),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()),
            "--compare" => compare = true,
            "--gantt" => gantt = true,
            _ => usage(),
        }
    }
    let Some(trace) = trace else { usage() };
    let workload = match load_trace(&trace) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut scenario = match scenario_path {
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Scenario>(&s).map_err(|e| e.to_string()))
        {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("cannot load scenario {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Scenario::default(),
    };
    if let Some(n) = nodes {
        scenario.classical_nodes = n;
    }
    if let Some(d) = device {
        scenario.devices = vec![d];
    }
    if let Some(p) = policy {
        scenario.policy = p;
    }
    if let Some(s) = seed {
        scenario.seed = s;
    }
    if let Some(s) = strategy {
        scenario.strategy = s;
    }
    scenario.record_gantt = gantt;

    eprintln!(
        "{} jobs ({} hybrid) on {} nodes + {:?}, policy {}",
        workload.len(),
        workload.hybrid_count(),
        scenario.classical_nodes,
        scenario.devices,
        scenario.policy
    );

    let strategies = if compare {
        Strategy::representative_set()
    } else {
        vec![scenario.strategy]
    };
    let mut table = Table::new(vec![
        "strategy",
        "makespan",
        "mean wait",
        "slowdown",
        "QPU util",
        "node-h wasted",
        "failed",
    ]);
    for s in strategies {
        let mut sc = scenario.clone();
        sc.strategy = s;
        match FacilitySim::run(&sc, &workload) {
            Ok(outcome) => {
                summarize(s, &outcome, &mut table);
                if gantt && !compare {
                    if let Some(g) = &outcome.gantt {
                        eprintln!();
                        eprint!("{}", g.render_ascii(SimTime::ZERO, outcome.makespan, 100));
                    }
                }
            }
            Err(e) => {
                eprintln!("simulation failed under {s}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{table}");
    ExitCode::SUCCESS
}

/// Runs a declarative parameter grid on the sweep engine and emits the
/// per-cell rows (or the replica-aggregated summary) as CSV, JSON, or
/// markdown.
fn sweep(args: &[String]) -> ExitCode {
    let mut grid_path: Option<String> = None;
    let mut threads = 0usize; // 0 = available parallelism
    let mut format = String::from("csv");
    let mut summary = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => grid_path = it.next().cloned(),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--format" => format = it.next().cloned().unwrap_or_else(|| usage()),
            "--summary" => summary = true,
            "--out" => out = it.next().cloned(),
            _ => usage(),
        }
    }
    if !matches!(format.as_str(), "csv" | "json" | "markdown" | "md") {
        eprintln!("unknown --format `{format}` (csv | json | markdown)");
        return ExitCode::from(2);
    }
    let Some(grid_path) = grid_path else { usage() };
    let grid = match std::fs::read_to_string(&grid_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<Grid>(&s).map_err(|e| e.to_string()))
    {
        Ok(grid) => grid,
        Err(e) => {
            eprintln!("cannot load grid {grid_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = grid.validate() {
        eprintln!("invalid grid {grid_path}: {e}");
        return ExitCode::FAILURE;
    }

    let executor = Executor::new(threads);
    eprintln!(
        "sweep: {} cells ({} replicas) on {} threads",
        grid.len(),
        grid.replicas,
        executor.threads()
    );
    let result = match executor.run_sim(&grid) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (rendered, contents) = if summary {
        let table = result.summary();
        let rendered = match format.as_str() {
            "csv" => table.to_csv(),
            "json" => serde_json::to_string_pretty(&table).expect("table serializes"),
            _ => table.to_markdown(),
        };
        let contents = format!("{} summary rows ({} cells)", table.len(), result.len());
        (rendered, contents)
    } else {
        let rendered = match format.as_str() {
            "csv" => result.to_csv(),
            "json" => result.to_json(),
            _ => result.to_markdown(),
        };
        (rendered, format!("{} cells", result.len()))
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {contents} to {path}");
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
