//! Small argument-handling helpers shared by the command-line tools.
//!
//! PR 2 established the repository's arg-error convention with the
//! `repro` binary: unknown input exits with code 2 and, when a known
//! candidate is plausibly close, a "did you mean" hint. These helpers
//! let every binary follow it.

/// Levenshtein edit distance between two strings.
///
/// # Examples
///
/// ```
/// assert_eq!(hpcqc::cli::edit_distance("vqpu", "vpqu"), 2);
/// assert_eq!(hpcqc::cli::edit_distance("same", "same"), 0);
/// ```
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current.push(substitution.min(prev[j + 1] + 1).min(current[j] + 1));
        }
        prev = current;
    }
    prev[b.len()]
}

/// The closest candidate to `input`, if anything is plausibly close
/// (edit distance ≤ 2 — enough for a typo'd short name).
///
/// # Examples
///
/// ```
/// let known = ["co-schedule", "workflow", "vqpu", "malleable", "adaptive"];
/// assert_eq!(hpcqc::cli::did_you_mean("workflw", known), Some("workflow"));
/// assert_eq!(hpcqc::cli::did_you_mean("qsub", known), None);
/// ```
pub fn did_you_mean<'a>(
    input: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    candidates
        .into_iter()
        .map(|known| (edit_distance(input, known), known))
        .min()
        .filter(|(distance, _)| *distance <= 2)
        .map(|(_, known)| known)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn hints_only_when_close() {
        let known = ["fcfs", "easy", "conservative"];
        assert_eq!(did_you_mean("eazy", known), Some("easy"));
        assert_eq!(did_you_mean("unrelated", known), None);
    }
}
